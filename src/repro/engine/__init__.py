"""Simulation engines: reference agent-based, batched uniform, the
count-based jump-chain engine with null-interaction skipping, the
ensemble engine that vectorizes the jump chain across replicates, the
compiled kernel tiers (``count-jit``/``batch-jit``), and the
process-parallel sharded ensemble tier (``ensemble-parallel``).

Each engine is a stepper factory: ``Engine.start`` returns a resumable
:class:`EngineSession` (advance/snapshot/restore/result) and
``Engine.run`` drives a fresh session to completion in one call."""

from .agent_based import AgentBasedEngine
from .base import Engine, SimulationResult, StepCallback
from .batch import BatchEngine
from .count_based import CountBasedEngine
from .ensemble import EnsembleEngine
from .graph_batch import GraphBatchEngine, GraphBatchSession
from .hybrid import HybridEngine
from .jit import JitBatchEngine, JitCountEngine
from .kernels import KernelBuildError, KernelSet, get_kernels, reset_kernels
from .parallel import ParallelEnsembleEngine, ShardedEnsembleSession
from .metrics import GroupSizeRecorder, TimeSeriesRecorder, aggregate_milestones
from .registry import (
    available_engines,
    build_engine,
    engine_for_scheduler,
    register_engine,
    resolve_engine,
)
from .session import EngineSession, SessionState, SessionStatus
from .runner import (
    InMemoryTrialCache,
    TrialCache,
    TrialSet,
    run_trials,
    trial_fingerprint,
    use_trial_cache,
)
from .sampling import FenwickWeights

__all__ = [
    "Engine",
    "SimulationResult",
    "StepCallback",
    "EngineSession",
    "SessionState",
    "SessionStatus",
    "AgentBasedEngine",
    "BatchEngine",
    "CountBasedEngine",
    "EnsembleEngine",
    "GraphBatchEngine",
    "GraphBatchSession",
    "HybridEngine",
    "JitCountEngine",
    "JitBatchEngine",
    "ParallelEnsembleEngine",
    "ShardedEnsembleSession",
    "KernelSet",
    "KernelBuildError",
    "get_kernels",
    "reset_kernels",
    "FenwickWeights",
    "available_engines",
    "build_engine",
    "engine_for_scheduler",
    "register_engine",
    "resolve_engine",
    "TimeSeriesRecorder",
    "GroupSizeRecorder",
    "aggregate_milestones",
    "TrialSet",
    "TrialCache",
    "InMemoryTrialCache",
    "run_trials",
    "trial_fingerprint",
    "use_trial_cache",
]
