"""Simulation engines: reference agent-based, batched uniform, and the
count-based jump-chain engine with null-interaction skipping."""

from .agent_based import AgentBasedEngine
from .base import Engine, SimulationResult, StepCallback
from .batch import BatchEngine
from .count_based import CountBasedEngine
from .hybrid import HybridEngine
from .metrics import GroupSizeRecorder, TimeSeriesRecorder, aggregate_milestones
from .runner import TrialSet, run_trials

__all__ = [
    "Engine",
    "SimulationResult",
    "StepCallback",
    "AgentBasedEngine",
    "BatchEngine",
    "CountBasedEngine",
    "HybridEngine",
    "TimeSeriesRecorder",
    "GroupSizeRecorder",
    "aggregate_milestones",
    "TrialSet",
    "run_trials",
]
