"""Simulation engines: reference agent-based, batched uniform, the
count-based jump-chain engine with null-interaction skipping, and the
ensemble engine that vectorizes the jump chain across replicates.

Each engine is a stepper factory: ``Engine.start`` returns a resumable
:class:`EngineSession` (advance/snapshot/restore/result) and
``Engine.run`` drives a fresh session to completion in one call."""

from .agent_based import AgentBasedEngine
from .base import Engine, SimulationResult, StepCallback
from .batch import BatchEngine
from .count_based import CountBasedEngine
from .ensemble import EnsembleEngine
from .hybrid import HybridEngine
from .metrics import GroupSizeRecorder, TimeSeriesRecorder, aggregate_milestones
from .registry import available_engines, build_engine, register_engine, resolve_engine
from .session import EngineSession, SessionState, SessionStatus
from .runner import (
    InMemoryTrialCache,
    TrialCache,
    TrialSet,
    run_trials,
    trial_fingerprint,
    use_trial_cache,
)
from .sampling import FenwickWeights

__all__ = [
    "Engine",
    "SimulationResult",
    "StepCallback",
    "EngineSession",
    "SessionState",
    "SessionStatus",
    "AgentBasedEngine",
    "BatchEngine",
    "CountBasedEngine",
    "EnsembleEngine",
    "HybridEngine",
    "FenwickWeights",
    "available_engines",
    "build_engine",
    "register_engine",
    "resolve_engine",
    "TimeSeriesRecorder",
    "GroupSizeRecorder",
    "aggregate_milestones",
    "TrialSet",
    "TrialCache",
    "InMemoryTrialCache",
    "run_trials",
    "trial_fingerprint",
    "use_trial_cache",
]
