"""Weighted class sampling for the jump-chain engines.

The count-based engine repeatedly (a) samples an interaction class with
probability proportional to its weight and (b) updates a handful of
weights after the class fires.  A flat weight list makes (a) an O(R)
cumulative scan and (b) O(1) per touched class; a Fenwick tree (binary
indexed tree) makes both O(log R), which is what keeps per-event cost
flat in the Figure 6 regime where the number of classes grows
quadratically with k.

:class:`FenwickWeights` stores non-negative integer weights.  Its
inverse-CDF query :meth:`find` returns exactly the class a linear
first-prefix-exceeding scan would return for the same draw ``x`` — the
prefix sums involved are integers below 2**53, so the float comparisons
are exact and swapping the structure into an engine preserves
executions bit-for-bit (the pinned regression test in
``tests/engine/test_count_based.py`` checks this).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["FenwickWeights"]


class FenwickWeights:
    """Fenwick-tree index over non-negative integer weights.

    Supports point assignment, total-weight queries, prefix sums, and
    the inverse-CDF search used for proportional sampling, all in
    O(log R) (O(R) build).
    """

    __slots__ = ("_size", "_tree", "_values", "_total")

    def __init__(self, weights: Iterable[int] | Sequence[int]) -> None:
        values = [int(w) for w in weights]
        if any(w < 0 for w in values):
            raise ValueError("weights must be non-negative")
        size = len(values)
        # tree[i] (1-based) holds the sum of values[i - lowbit(i) .. i-1].
        tree = [0] * (size + 1)
        for i, w in enumerate(values, start=1):
            tree[i] += w
            parent = i + (i & -i)
            if parent <= size:
                tree[parent] += tree[i]
        self._size = size
        self._tree = tree
        self._values = values
        self._total = sum(values)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def total(self) -> int:
        """Sum of all weights (maintained incrementally)."""
        return self._total

    def get(self, index: int) -> int:
        """Current weight of ``index``."""
        return self._values[index]

    def prefix_sum(self, count: int) -> int:
        """Sum of the first ``count`` weights (``count`` in 0..R)."""
        if not 0 <= count <= self._size:
            raise IndexError(f"prefix length {count} out of range 0..{self._size}")
        tree = self._tree
        total = 0
        i = count
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total

    def find(self, x: float) -> int:
        """Smallest index whose inclusive prefix sum strictly exceeds ``x``.

        This is proportional sampling by inverse CDF: for
        ``x = u * total`` with ``u`` uniform in [0, 1) the returned
        index is drawn with probability ``weight / total``.  Matching
        the linear-scan convention, a floating-point draw at or beyond
        the total falls back to the last index, and zero-weight classes
        are never returned (for positive ``total``).

        Raises
        ------
        ValueError
            If the structure is empty or all weights are zero.
        """
        if self._size == 0 or self._total == 0:
            raise ValueError("cannot sample from empty or all-zero weights")
        tree = self._tree
        size = self._size
        # Highest power of two <= size.
        step = 1 << (size.bit_length() - 1)
        pos = 0
        while step > 0:
            nxt = pos + step
            if nxt <= size and x >= tree[nxt]:
                x -= tree[nxt]
                pos = nxt
            step >>= 1
        if pos >= size:  # x >= total: floating-point edge
            return size - 1
        return pos

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def set(self, index: int, weight: int) -> None:
        """Assign ``weight`` to ``index`` (point update, O(log R))."""
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        delta = weight - self._values[index]
        if delta == 0:
            return
        self._values[index] = weight
        self._total += delta
        tree = self._tree
        size = self._size
        i = index + 1
        while i <= size:
            tree[i] += delta
            i += i & -i

    def to_list(self) -> list[int]:
        """Current weights as a plain list (for tests and debugging)."""
        return list(self._values)
