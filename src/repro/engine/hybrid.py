"""Adaptive hybrid engine: agent-level early, jump-chain late.

The engine ablation shows a crossover: the batch engine's ~O(1) per
interaction wins while most interactions are effective (early in a
run, and for small n), while the count engine's O(#rules) per
*effective* interaction wins once null interactions dominate (late in
a run, large n, large k — the paper's Figure 5/6 regime).

The hybrid engine gets both ends: it starts with the batch loop and
monitors the exact active-weight fraction ``W/T`` (computable from the
counts in O(#rules)); when the fraction stays below a threshold it
drops the agent array and continues on the count-based jump chain.
Agents are exchangeable under the uniform scheduler, so the count
vector is a sufficient statistic and the switch is distributionally
seamless — the trajectory after the switch has exactly the law of
continuing agent-level simulation.

The two phases consume the RNG differently, so a hybrid run is not
bit-identical to either pure engine; it is equivalent in law (checked
by KS tests in the suite).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from ..core.protocol import Protocol
from ..core.rng import SeedLike, ensure_generator
from .base import Engine, SimulationResult, StepCallback
from .count_based import CountBasedEngine

__all__ = ["HybridEngine"]


class HybridEngine(Engine):
    """Batch loop that hands off to the count engine when nulls dominate.

    Parameters
    ----------
    switch_threshold:
        Hand off once ``W/T`` (the probability that a uniformly random
        interaction changes something) drops below this value.  The
        default 0.2 hands off when >= 80% of interactions are null —
        roughly where the count engine's per-event cost amortizes.
    check_every:
        Evaluate the fraction every this-many *effective* interactions
        (the fraction only changes on effective steps).
    block_size:
        Batch-phase pair block size.
    """

    name = "hybrid"

    def __init__(
        self,
        switch_threshold: float = 0.2,
        check_every: int = 64,
        block_size: int = 4096,
    ) -> None:
        if not 0.0 <= switch_threshold <= 1.0:
            raise ValueError(f"switch_threshold must be in [0, 1], got {switch_threshold}")
        if check_every < 1:
            raise ValueError(f"check_every must be positive, got {check_every}")
        if block_size < 1:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._threshold = float(switch_threshold)
        self._check_every = check_every
        self._block_size = block_size

    def run(
        self,
        protocol: Protocol,
        n: int | None = None,
        *,
        seed: SeedLike = None,
        initial_counts: Sequence[int] | np.ndarray | None = None,
        max_interactions: int | None = None,
        track_state: str | int | None = None,
        on_effective: StepCallback | None = None,
    ) -> SimulationResult:
        counts0 = self._resolve_initial(protocol, n, initial_counts)
        n_total = int(counts0.sum())
        track = self._resolve_track_state(protocol, track_state)
        rng = ensure_generator(seed)

        compiled = protocol.compiled
        S = compiled.num_states
        dflat = compiled.delta_list
        classes = compiled.classes
        counts: list[int] = counts0.tolist()
        states: list[int] = []
        for idx, c in enumerate(counts):
            states.extend([idx] * c)

        pred = protocol.stability_predicate(n_total)

        def active_weight() -> int:
            return sum(cls.weight(counts) for cls in classes)

        def is_stable() -> bool:
            if pred is not None:
                return pred(counts)
            return active_weight() == 0

        T_ordered = n_total * (n_total - 1)
        budget = max_interactions if max_interactions is not None else 2**62
        interactions = 0
        effective = 0
        milestones: list[int] = []
        high_water = counts[track] if track is not None else 0
        threshold_weight = self._threshold * T_ordered
        check_every = self._check_every

        self._callback_prime(on_effective, counts)
        t0 = time.perf_counter()
        converged = is_stable()
        switch = not converged and active_weight() < threshold_weight
        block = self._block_size
        # ------------------------------------------------------- phase 1
        while not (converged or switch) and interactions < budget:
            take = min(block, budget - interactions)
            a_arr = rng.integers(0, n_total, size=take)
            b_arr = rng.integers(0, n_total - 1, size=take)
            b_arr += b_arr >= a_arr
            for a, b in zip(a_arr.tolist(), b_arr.tolist()):
                interactions += 1
                p = states[a]
                q = states[b]
                pq = p * S + q
                out = dflat[pq]
                if out == pq:
                    continue
                p2, q2 = divmod(out, S)
                states[a] = p2
                states[b] = q2
                counts[p] -= 1
                counts[q] -= 1
                counts[p2] += 1
                counts[q2] += 1
                effective += 1
                if track is not None:
                    cur = counts[track]
                    while high_water < cur:
                        high_water += 1
                        milestones.append(interactions)
                if on_effective is not None:
                    on_effective(interactions, counts)
                if is_stable():
                    converged = True
                    break
                if effective % check_every == 0 and active_weight() < threshold_weight:
                    switch = True
                    break

        phase1_interactions = interactions
        phase1_effective = effective
        elapsed1 = time.perf_counter() - t0

        if converged or interactions >= budget:
            self._callback_finalize(on_effective, interactions, counts)
            final = np.asarray(counts, dtype=np.int64)
            return self._emit(SimulationResult(
                protocol=protocol.name,
                n=n_total,
                engine=self.name,
                interactions=interactions,
                effective_interactions=effective,
                converged=converged,
                silent=compiled.is_silent(final),
                final_counts=final,
                group_sizes=self._group_sizes_or_empty(protocol, final),
                tracked_milestones=milestones,
                elapsed=elapsed1,
            ))

        # ------------------------------------------------------- phase 2
        # Exchangeability: the count vector fully determines the law of
        # the remainder, so continue on the jump chain.
        remaining_budget = (
            None if max_interactions is None else budget - interactions
        )
        if on_effective is None:
            tail_callback = None
        else:
            offset = phase1_interactions

            def tail_callback(i: int, c: Sequence[int]) -> None:
                on_effective(offset + i, c)

        tail = CountBasedEngine().run(
            protocol,
            initial_counts=np.asarray(counts, dtype=np.int64),
            seed=rng,
            max_interactions=remaining_budget,
            track_state=track,
            on_effective=tail_callback,
        )
        # Merge phase-2 milestones (offsets are phase-relative).
        for ni in tail.tracked_milestones:
            milestones.append(phase1_interactions + ni)
        # The tail engine saw only the wrapped function, so the original
        # callback's finalize hook fires here, at whole-run coordinates.
        self._callback_finalize(
            on_effective,
            phase1_interactions + tail.interactions,
            tail.final_counts.tolist(),
        )
        return self._emit(SimulationResult(
            protocol=protocol.name,
            n=n_total,
            engine=self.name,
            interactions=phase1_interactions + tail.interactions,
            effective_interactions=phase1_effective + tail.effective_interactions,
            converged=tail.converged,
            silent=tail.silent,
            final_counts=tail.final_counts,
            group_sizes=tail.group_sizes,
            tracked_milestones=milestones,
            elapsed=elapsed1 + tail.elapsed,
        ))
