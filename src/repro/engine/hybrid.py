"""Adaptive hybrid engine: agent-level early, jump-chain late.

The engine ablation shows a crossover: the batch engine's ~O(1) per
interaction wins while most interactions are effective (early in a
run, and for small n), while the count engine's O(#rules) per
*effective* interaction wins once null interactions dominate (late in
a run, large n, large k — the paper's Figure 5/6 regime).

The hybrid engine gets both ends: it starts with the batch loop and
monitors the exact active-weight fraction ``W/T`` (computable from the
counts in O(#rules)); when the fraction stays below a threshold it
drops the agent array and continues on the count-based jump chain.
Agents are exchangeable under the uniform scheduler, so the count
vector is a sufficient statistic and the switch is distributionally
seamless — the trajectory after the switch has exactly the law of
continuing agent-level simulation.

The two phases consume the RNG differently, so a hybrid run is not
bit-identical to either pure engine; it is equivalent in law (checked
by KS tests in the suite).

Both phases live in :class:`HybridSession`: phase 1 is a buffered
batch loop, phase 2 reuses the count engine's resumable
:class:`~repro.engine.count_based.JumpChain` directly — so the tail no
longer runs through ``CountBasedEngine.run()`` and no longer emits a
spurious ``count`` telemetry record alongside the hybrid one.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.protocol import Protocol
from ..core.rng import SeedLike
from .base import Engine, StepCallback
from .count_based import JumpChain
from .session import EngineSession

__all__ = ["HybridEngine", "HybridSession"]


class HybridSession(EngineSession):
    """Stepper for :class:`HybridEngine`: batch phase then jump chain.

    The switch condition is only evaluated where the monolithic loop
    evaluated it — once before the first interaction and after every
    ``check_every``-th effective interaction — never at slice
    boundaries, so sliced execution replays the straight-through run
    bit-for-bit.  On switch the unconsumed remainder of the current
    pair block is discarded (the monolith drew whole blocks and
    abandoned them at the handoff) and the jump chain eagerly draws its
    first uniform block, exactly like a fresh count-engine run.

    The phase-2 milestone high-water mark restarts from the switch
    configuration — a deliberate re-creation of the historical
    behaviour, where the tail engine started its own tracking (so a
    tracked count that dipped during phase 1 can re-announce milestones
    after the switch).
    """

    def __init__(
        self,
        engine: "HybridEngine",
        protocol: Protocol,
        n: int | None,
        *,
        seed: SeedLike,
        initial_counts: Sequence[int] | np.ndarray | None,
        max_interactions: int | None,
        track_state: str | int | None,
        on_effective: StepCallback | None,
    ) -> None:
        super().__init__(
            engine.name,
            protocol,
            n,
            seed=seed,
            initial_counts=initial_counts,
            max_interactions=max_interactions,
            track_state=track_state,
            on_effective=on_effective,
        )
        compiled = protocol.compiled
        self._S = compiled.num_states
        self._dflat = compiled.delta_list
        self._classes = compiled.classes
        self._pred = protocol.stability_predicate(self._n)
        self._block = engine._block_size
        self._check_every = engine._check_every
        self._threshold_weight = engine._threshold * (self._n * (self._n - 1))
        states: list[int] = []
        for idx, c in enumerate(self.counts):
            states.extend([idx] * c)
        self._states: list[int] | None = states
        self._buf_a: list[int] = []
        self._buf_b: list[int] = []
        self._pos = 0
        self._phase = 1
        self._chain: JumpChain | None = None
        self._converged = self._is_stable()
        self._switch = (
            not self._converged and self._active_weight() < self._threshold_weight
        )

    # ------------------------------------------------------------------
    # Phase-1 bookkeeping
    # ------------------------------------------------------------------
    def _active_weight(self) -> int:
        counts = self.counts
        return sum(cls.weight(counts) for cls in self._classes)

    def _is_stable(self) -> bool:
        if self._pred is not None:
            return self._pred(self.counts)
        return self._active_weight() == 0

    def _silent_now(self) -> bool:
        if self._phase == 2:
            return self._chain.silent
        return bool(
            self._protocol.compiled.is_silent(
                np.asarray(self.counts, dtype=np.int64)
            )
        )

    # ------------------------------------------------------------------
    # Stepper
    # ------------------------------------------------------------------
    def _advance_inner(self, target: int) -> None:
        if self._phase == 1:
            self._advance_phase1(target)
            if (
                self._switch
                and not self._converged
                and self.interactions < self._budget
            ):
                self._switch_to_count()
        if self._phase == 2 and not (self._converged or self._halted):
            chain = self._chain
            chain.advance(self, target)
            self._converged = chain.converged
            self._halted = chain.silent and not chain.converged

    def _advance_phase1(self, target: int) -> None:
        counts = self.counts
        states = self._states
        S = self._S
        dflat = self._dflat
        pred = self._pred
        classes = self._classes
        rng = self._rng
        n_total = self._n
        track = self._track
        on_effective = self._on_effective
        budget = self._budget
        block = self._block
        check_every = self._check_every
        threshold_weight = self._threshold_weight
        interactions = self.interactions
        effective = self.effective
        milestones = self.milestones
        high_water = self._high_water
        buf_a = self._buf_a
        buf_b = self._buf_b
        pos = self._pos
        converged = self._converged
        switch = self._switch

        def active_weight() -> int:
            return sum(cls.weight(counts) for cls in classes)

        def is_stable() -> bool:
            if pred is not None:
                return pred(counts)
            return active_weight() == 0

        while not (converged or switch) and interactions < target:
            if pos >= len(buf_a):
                take = min(block, budget - interactions)
                a_arr = rng.integers(0, n_total, size=take)
                b_arr = rng.integers(0, n_total - 1, size=take)
                b_arr += b_arr >= a_arr
                buf_a = a_arr.tolist()
                buf_b = b_arr.tolist()
                pos = 0
            end = min(len(buf_a), pos + (target - interactions))
            seg_a = buf_a[pos:end]
            seg_b = buf_b[pos:end]
            before = interactions
            for a, b in zip(seg_a, seg_b):
                interactions += 1
                p = states[a]
                q = states[b]
                pq = p * S + q
                out = dflat[pq]
                if out == pq:
                    continue
                p2, q2 = divmod(out, S)
                states[a] = p2
                states[b] = q2
                counts[p] -= 1
                counts[q] -= 1
                counts[p2] += 1
                counts[q2] += 1
                effective += 1
                if track is not None:
                    cur = counts[track]
                    while high_water < cur:
                        high_water += 1
                        milestones.append(interactions)
                if on_effective is not None:
                    on_effective(interactions, counts)
                if is_stable():
                    converged = True
                    break
                if (
                    effective % check_every == 0
                    and active_weight() < threshold_weight
                ):
                    switch = True
                    break
            pos += interactions - before

        self._buf_a = buf_a
        self._buf_b = buf_b
        self._pos = pos
        self.interactions = interactions
        self.effective = effective
        self._high_water = high_water
        self._converged = converged
        self._switch = switch

    def _switch_to_count(self) -> None:
        """Drop the agent array and hand the run to the jump chain."""
        self._phase = 2
        self._states = None
        # Unused remainder of the current pair block is abandoned, as
        # the monolithic handoff abandoned it.
        self._buf_a = []
        self._buf_b = []
        self._pos = 0
        # The tail restarts milestone tracking from the switch
        # configuration (historical behaviour, preserved bit-for-bit).
        if self._track is not None:
            self._high_water = self.counts[self._track]
        self._chain = JumpChain(self._protocol, self.counts, self._rng, self._n)

    def switch_now(self) -> None:
        """Force the phase-1 -> phase-2 handoff immediately.

        Used by driven execution (the conformance differ) to exercise
        both data paths at a chosen point in a replayed schedule.
        """
        if self._phase == 1:
            self._switch_to_count()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _capture(self) -> dict:
        if self._phase == 1:
            return {
                "phase": 1,
                "counts": list(self.counts),
                "states": list(self._states),
                "rng": self._rng_state(self._rng),
                "buf_a": self._buf_a[self._pos:],
                "buf_b": self._buf_b[self._pos:],
                "switch": self._switch,
            }
        return {
            "phase": 2,
            "counts": list(self.counts),
            "chain": self._chain.capture(),
        }

    def _restore(self, extra: dict) -> None:
        self.counts = list(extra["counts"])
        if extra["phase"] == 1:
            self._phase = 1
            self._chain = None
            self._states = list(extra["states"])
            self._rng = self._rng_from_state(extra["rng"])
            self._buf_a = list(extra["buf_a"])
            self._buf_b = list(extra["buf_b"])
            self._pos = 0
            self._switch = extra["switch"]
        else:
            self._phase = 2
            self._states = None
            self._buf_a = []
            self._buf_b = []
            self._pos = 0
            self._switch = True
            self._chain = JumpChain(
                self._protocol, self.counts, self._rng, self._n, draw=False
            )
            self._rng = self._chain.apply_capture(extra["chain"])

    # ------------------------------------------------------------------
    # Driven execution
    # ------------------------------------------------------------------
    def apply_scheduled(self, a: int, b: int, p: int, q: int) -> bool:
        if self._phase == 2:
            return self._chain.apply_pair(p, q)
        states = self._states
        S = self._S
        p_own = states[a]
        q_own = states[b]
        pq = p_own * S + q_own
        out = self._dflat[pq]
        if out == pq:
            return False
        p2, q2 = divmod(out, S)
        counts = self.counts
        counts[p_own] -= 1
        counts[q_own] -= 1
        counts[p2] += 1
        counts[q2] += 1
        states[a] = p2
        states[b] = q2
        return True

    def audit(self) -> str | None:
        if self._phase == 2:
            return self._chain.audit()
        derived = [0] * self._S
        for s in self._states:
            derived[s] += 1
        if derived != list(self.counts):
            return f"agent states tally {derived} != counts {list(self.counts)}"
        return None


class HybridEngine(Engine):
    """Batch loop that hands off to the count engine when nulls dominate.

    Parameters
    ----------
    switch_threshold:
        Hand off once ``W/T`` (the probability that a uniformly random
        interaction changes something) drops below this value.  The
        default 0.2 hands off when >= 80% of interactions are null —
        roughly where the count engine's per-event cost amortizes.
    check_every:
        Evaluate the fraction every this-many *effective* interactions
        (the fraction only changes on effective steps).
    block_size:
        Batch-phase pair block size.
    """

    name = "hybrid"

    def __init__(
        self,
        switch_threshold: float = 0.2,
        check_every: int = 64,
        block_size: int = 4096,
    ) -> None:
        if not 0.0 <= switch_threshold <= 1.0:
            raise ValueError(f"switch_threshold must be in [0, 1], got {switch_threshold}")
        if check_every < 1:
            raise ValueError(f"check_every must be positive, got {check_every}")
        if block_size < 1:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._threshold = float(switch_threshold)
        self._check_every = check_every
        self._block_size = block_size

    def start(
        self,
        protocol: Protocol,
        n: int | None = None,
        *,
        seed: SeedLike = None,
        initial_counts: Sequence[int] | np.ndarray | None = None,
        max_interactions: int | None = None,
        track_state: str | int | None = None,
        on_effective: StepCallback | None = None,
    ) -> HybridSession:
        return HybridSession(
            self,
            protocol,
            n,
            seed=seed,
            initial_counts=initial_counts,
            max_interactions=max_interactions,
            track_state=track_state,
            on_effective=on_effective,
        )
