"""Multi-trial experiment runner.

The paper reports averages over 100 independent executions per
parameter point.  :func:`run_trials` reproduces that methodology with
a strict seeding discipline: per-trial generators are spawned from one
master ``SeedSequence``, so results are reproducible trial-by-trial
and independent of execution order.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Callable, Iterator, Sequence
from typing import Protocol as TypingProtocol

import numpy as np

from ..core.errors import SimulationError
from ..core.protocol import Protocol
from ..core.rng import SeedLike, spawn_seed_sequences
from ..obs.instruments import (
    record_cache_lookup,
    record_chunk_seconds,
    record_trialset,
)
from ..obs.trace import active_trace_writer
from ..scheduling.spec import SchedulerSpec
from .base import Engine, SimulationResult
from .registry import engine_for_scheduler

__all__ = [
    "TrialSet",
    "TrialCache",
    "InMemoryTrialCache",
    "run_trials",
    "finalize_trials",
    "trial_fingerprint",
    "use_trial_cache",
    "active_trial_cache",
]

#: Called after every completed trial with ``(done, total)`` where
#: ``done`` counts finished trials (1-based).  Engines that simulate a
#: whole chunk in one vectorized call report the chunk at once.
ProgressCallback = Callable[[int, int], None]


@dataclass(slots=True)
class TrialSet:
    """Results of repeated independent executions at one parameter point."""

    protocol: str
    n: int
    engine: str
    results: list[SimulationResult]

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def interactions(self) -> np.ndarray:
        """Per-trial total interaction counts."""
        return np.asarray([r.interactions for r in self.results], dtype=np.int64)

    @property
    def effective_interactions(self) -> np.ndarray:
        return np.asarray(
            [r.effective_interactions for r in self.results], dtype=np.int64
        )

    @property
    def all_converged(self) -> bool:
        return all(r.converged for r in self.results)

    @property
    def mean_interactions(self) -> float:
        """The paper's reported statistic: average interactions to stability."""
        return float(self.interactions.mean())

    @property
    def std_interactions(self) -> float:
        return float(self.interactions.std(ddof=1)) if self.trials > 1 else 0.0

    @property
    def sem_interactions(self) -> float:
        """Standard error of the mean."""
        return self.std_interactions / np.sqrt(self.trials) if self.trials > 1 else 0.0

    def milestone_lists(self) -> list[list[int]]:
        """Tracked-state milestones of every trial (for Figure 4)."""
        return [r.tracked_milestones for r in self.results]

    def summary(self) -> str:
        return (
            f"{self.protocol} n={self.n} [{self.engine} x{self.trials}]: "
            f"mean={self.mean_interactions:.1f} "
            f"std={self.std_interactions:.1f} "
            f"range=[{int(self.interactions.min())}, {int(self.interactions.max())}]"
        )

    # ------------------------------------------------------------------
    # Serialization (campaign cache / job store)
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """JSON-safe summary statistics (the per-point figures report)."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "engine": self.engine,
            "trials": self.trials,
            "mean_interactions": self.mean_interactions,
            "std_interactions": self.std_interactions,
            "sem_interactions": self.sem_interactions,
            "min_interactions": int(self.interactions.min()),
            "max_interactions": int(self.interactions.max()),
            "mean_effective": float(self.effective_interactions.mean()),
            "all_converged": self.all_converged,
        }

    def to_record(self) -> dict[str, object]:
        """Lossless JSON-safe serialization of every trial.

        ``TrialSet.from_record(ts.to_record())`` reconstructs a trial
        set whose arrays and statistics are bit-identical to the
        original — the contract the campaign cache relies on.
        """
        return {
            "protocol": self.protocol,
            "n": self.n,
            "engine": self.engine,
            "results": [r.to_record() for r in self.results],
        }

    @classmethod
    def from_record(cls, record: dict[str, object]) -> "TrialSet":
        """Inverse of :meth:`to_record`."""
        results = [SimulationResult.from_record(r) for r in record["results"]]
        return cls(
            protocol=record["protocol"],
            n=record["n"],
            engine=record["engine"],
            results=results,
        )


class TrialCache(TypingProtocol):
    """Key-value interface :func:`run_trials` consults before running.

    Keys are :func:`trial_fingerprint` digests; values are
    :meth:`TrialSet.to_record` dicts.  Implementations must be safe to
    call from the thread that invoked :func:`run_trials` only.
    """

    def get(self, key: str) -> dict | None: ...  # pragma: no cover

    def put(self, key: str, record: dict) -> None: ...  # pragma: no cover


class InMemoryTrialCache:
    """Dict-backed :class:`TrialCache` with hit/miss counters."""

    def __init__(self) -> None:
        self._data: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> dict | None:
        record = self._data.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        self._data[key] = record


#: Process-wide cache installed by :func:`use_trial_cache`; ``None``
#: disables caching for callers that do not pass ``cache=`` explicitly.
_ACTIVE_CACHE: TrialCache | None = None


def active_trial_cache() -> TrialCache | None:
    """The cache currently installed by :func:`use_trial_cache`."""
    return _ACTIVE_CACHE


@contextmanager
def use_trial_cache(cache: TrialCache | None) -> Iterator[TrialCache | None]:
    """Install ``cache`` as the process-wide default for ``run_trials``.

    Every :func:`run_trials` call inside the ``with`` block that does
    not pass its own ``cache=`` consults (and populates) this one.  The
    experiment CLI uses it to make whole-figure sweeps incremental
    without threading a cache argument through every experiment module.
    """
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    try:
        yield cache
    finally:
        _ACTIVE_CACHE = previous


def _protocol_fingerprint(protocol: Protocol) -> str:
    """Content hash of a protocol's full behaviour description.

    Built from :meth:`Protocol.describe`, which renders the state
    space, group map, and every transition rule — two protocols with
    the same digest are behaviourally identical regardless of how they
    were constructed (registry, composition, or hand-built).
    """
    return hashlib.sha256(protocol.describe().encode()).hexdigest()


def trial_fingerprint(
    protocol: Protocol,
    n: int | None,
    *,
    trials: int,
    engine: str,
    seed: SeedLike,
    initial_counts: np.ndarray | None = None,
    max_interactions: int | None = None,
    track_state: str | int | None = None,
    scheduler: str | None = None,
) -> str | None:
    """Digest identifying one :func:`run_trials` call's full input.

    Returns ``None`` when the call is not cacheable (a ``Generator`` or
    ``SeedSequence`` seed has hidden stream state that a digest cannot
    capture).  Everything else — protocol behaviour, population,
    trial count, engine, integer seed, budget, tracking, scheduler — is
    hashed into one hex digest, so cache hits are exact-input matches.
    The ``scheduler`` key enters the payload only for non-uniform
    schedulers: every digest computed before the scheduler dimension
    existed stays byte-identical.
    """
    if not (seed is None or isinstance(seed, int)):
        return None
    payload = {
        "protocol": _protocol_fingerprint(protocol),
        "n": n,
        "trials": trials,
        "engine": engine,
        "seed": seed,
        "initial_counts": (
            None if initial_counts is None else [int(c) for c in initial_counts]
        ),
        "max_interactions": max_interactions,
        "track_state": track_state,
    }
    if scheduler is not None and scheduler != "uniform":
        payload["scheduler"] = scheduler
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_trials(
    protocol: Protocol,
    n: int | None = None,
    *,
    trials: int = 100,
    engine: Engine | str | None = None,
    seed: SeedLike = 0,
    initial_counts: Sequence[int] | np.ndarray | None = None,
    max_interactions: int | None = None,
    track_state: str | int | None = None,
    scheduler: str | SchedulerSpec | None = None,
    require_convergence: bool = True,
    progress: ProgressCallback | None = None,
    workers: int = 1,
    cache: TrialCache | None = None,
) -> TrialSet:
    """Run ``trials`` independent executions and collect the results.

    Parameters mirror :meth:`Engine.run`; additionally:

    trials:
        Number of independent executions (the paper uses 100).
    engine:
        An :class:`Engine` instance, a registered engine name (see
        :func:`~repro.engine.registry.available_engines`), or None for
        the default count-based engine.  Engines that expose a
        ``run_batch`` method (the ensemble engine) simulate all trials
        of a chunk in one call; the runner detects and uses it
        automatically.
    scheduler:
        Scheduler name or :class:`~repro.scheduling.spec.SchedulerSpec`
        (``None``/``"uniform"`` = the paper's uniform scheduler).
        Non-uniform schedulers constrain the engine: ``graph:*`` runs
        on the ``"graph"`` engine (default) or ``"agent"``;
        ``roundrobin`` requires ``"agent"``.  See
        :func:`~repro.engine.registry.engine_for_scheduler`.
    seed:
        Master seed; per-trial streams are spawned from it.
    require_convergence:
        Raise :class:`SimulationError` if any trial failed to stabilize
        within its budget (default True — averaging censored counts
        silently would bias the reproduction).
    progress:
        Optional callback ``(done, total)`` fired as trials complete
        (``done`` is the 1-based count of finished trials).  Vectorized
        engines and worker pools report whole chunks at once.
    cache:
        Optional :class:`TrialCache`.  When the call's
        :func:`trial_fingerprint` is already present, the stored record
        is returned immediately — bit-identical to re-running — and no
        simulation happens; otherwise the fresh result is stored under
        that key on the way out.  ``None`` falls back to the cache
        installed by :func:`use_trial_cache` (if any).
    workers:
        Number of worker processes.  ``1`` (default) runs serially in
        this process; ``> 1`` splits the trials into ``workers``
        contiguous chunks of ``ceil(trials / workers)`` and fans the
        chunks out over a process pool (one submission per worker, not
        per trial, so pickling overhead is paid per chunk).  Because
        per-trial seeds are spawned up front, scalar-engine results are
        bit-identical to the serial run regardless of worker count or
        completion order.  Requires the engine and protocol to be
        picklable (all engines and shipped protocols are; agent-based
        engines with lambda scheduler factories are not).
    """
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials}")
    if workers < 1:
        raise SimulationError(f"workers must be positive, got {workers}")
    spec = None if scheduler is None else SchedulerSpec.parse(scheduler)
    engine = engine_for_scheduler(engine, spec)
    scheduler_name = None if spec is None or spec.is_uniform else spec.name
    init = None if initial_counts is None else np.asarray(initial_counts, dtype=np.int64)
    t_start = time.perf_counter()

    if cache is None:
        cache = _ACTIVE_CACHE
    key: str | None = None
    if cache is not None:
        key = trial_fingerprint(
            protocol,
            n,
            trials=trials,
            engine=engine.name,
            seed=seed,
            initial_counts=init,
            max_interactions=max_interactions,
            track_state=track_state,
            scheduler=scheduler_name,
        )
        if key is not None:
            record = cache.get(key)
            record_cache_lookup(hit=record is not None)
            if record is not None:
                ts = TrialSet.from_record(record)
                # Convergence is enforced *before* any completion is
                # reported: a cached record of a failed point must raise
                # exactly like re-running it would, without a progress
                # callback first claiming the point finished cleanly.
                _enforce_convergence(ts.results, protocol, require_convergence)
                _conformance_check(protocol, ts.results)
                if progress is not None:
                    progress(trials, trials)
                _report_trialset(ts, seed=seed, cached=True, elapsed=0.0)
                return ts

    seeds = spawn_seed_sequences(seed, trials)

    if workers == 1:
        results = _run_chunk(
            engine, protocol, n, seeds, init, max_interactions, track_state,
            progress=progress, total=trials,
        )
    else:
        from concurrent.futures import ProcessPoolExecutor

        chunk = -(-trials // workers)  # ceil division
        spans = [(lo, min(lo + chunk, trials)) for lo in range(0, trials, chunk)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_chunk, engine, protocol, n, seeds[lo:hi], init,
                    max_interactions, track_state,
                )
                for lo, hi in spans
            ]
            results = []
            for (lo, hi), future in zip(spans, futures):
                results.extend(future.result())
                if progress is not None:
                    progress(hi, trials)

    ts = finalize_trials(
        protocol,
        engine.name,
        results,
        seed=seed,
        require_convergence=require_convergence,
        elapsed=time.perf_counter() - t_start,
    )
    if cache is not None and key is not None:
        cache.put(key, ts.to_record())
    return ts


def finalize_trials(
    protocol: Protocol,
    engine_name: str,
    results: list[SimulationResult],
    *,
    seed: SeedLike,
    require_convergence: bool = True,
    elapsed: float = 0.0,
) -> TrialSet:
    """Assemble, validate, and report a completed set of trial results.

    The shared tail of every multi-trial execution path: convergence
    enforcement, conformance checking, :class:`TrialSet` assembly, and
    observability reporting happen here exactly as :func:`run_trials`
    performs them — so alternative drivers (the campaign executor's
    resumable session loop) produce trial sets indistinguishable from a
    straight ``run_trials`` call with the same inputs.
    """
    if not results:
        raise SimulationError("finalize_trials needs at least one result")
    _enforce_convergence(results, protocol, require_convergence)
    _conformance_check(protocol, results)
    ts = TrialSet(
        protocol=protocol.name,
        n=results[0].n,
        engine=engine_name,
        results=results,
    )
    _report_trialset(ts, seed=seed, cached=False, elapsed=elapsed)
    return ts


def _report_trialset(
    ts: TrialSet, *, seed: SeedLike, cached: bool, elapsed: float
) -> None:
    """Emit runner metrics and the trace record for one completed call.

    No-ops entirely when telemetry is disabled and no trace writer is
    installed — observability never alters results, only reports them.
    """
    record_trialset(ts, cached=cached, elapsed=elapsed)
    writer = active_trace_writer()
    if writer is not None:
        writer.write_trial_set(ts, seed=seed, cached=cached, elapsed=elapsed)


def _conformance_check(
    protocol: Protocol, results: Sequence[SimulationResult]
) -> None:
    """Check final configurations when a conformance runtime is installed.

    The import is deferred so the runner (which every engine path pulls
    in) does not import the conformance subsystem — and through it the
    protocol registry — unless :func:`~repro.conform.runtime.use_conformance`
    is actually in play somewhere in the process.
    """
    import sys

    runtime_mod = sys.modules.get("repro.conform.runtime")
    if runtime_mod is None or runtime_mod.active_conformance() is None:
        return
    for result in results:
        runtime_mod.check_result(protocol, result)


def _enforce_convergence(
    results: Sequence[SimulationResult],
    protocol: Protocol,
    require_convergence: bool,
) -> None:
    if not require_convergence:
        return
    for t, result in enumerate(results):
        if not result.converged:
            raise SimulationError(
                f"trial {t} of {protocol.name} (n={result.n}) did not stabilize "
                f"within {result.interactions} interactions"
            )


def _run_chunk(
    engine: Engine,
    protocol: Protocol,
    n: int | None,
    seeds: Sequence[np.random.SeedSequence],
    initial_counts: np.ndarray | None,
    max_interactions: int | None,
    track_state: str | int | None,
    progress: ProgressCallback | None = None,
    total: int | None = None,
) -> list[SimulationResult]:
    """A contiguous run of trials — module-level so pools can pickle it.

    Engines with a ``run_batch`` method simulate the whole chunk in one
    vectorized call; scalar engines loop, one independent run per seed.
    ``progress`` is only wired on the in-process path (callbacks do not
    cross the pickle boundary); pooled runs report per chunk instead.
    """
    total = total if total is not None else len(seeds)
    t0 = time.perf_counter()
    run_batch = getattr(engine, "run_batch", None)
    if run_batch is not None:
        results = run_batch(
            protocol,
            n,
            seeds=list(seeds),
            initial_counts=initial_counts,
            max_interactions=max_interactions,
            track_state=track_state,
        )
        record_chunk_seconds(time.perf_counter() - t0)
        if progress is not None:
            progress(len(results), total)
        return results
    results = []
    for s in seeds:
        results.append(
            engine.run(
                protocol,
                n,
                seed=s,
                initial_counts=initial_counts,
                max_interactions=max_interactions,
                track_state=track_state,
            )
        )
        if progress is not None:
            progress(len(results), total)
    record_chunk_seconds(time.perf_counter() - t0)
    return results
