"""Multi-trial experiment runner.

The paper reports averages over 100 independent executions per
parameter point.  :func:`run_trials` reproduces that methodology with
a strict seeding discipline: per-trial generators are spawned from one
master ``SeedSequence``, so results are reproducible trial-by-trial
and independent of execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from ..core.errors import SimulationError
from ..core.protocol import Protocol
from ..core.rng import SeedLike, spawn_seed_sequences
from .base import Engine, SimulationResult
from .registry import resolve_engine

__all__ = ["TrialSet", "run_trials"]


@dataclass(slots=True)
class TrialSet:
    """Results of repeated independent executions at one parameter point."""

    protocol: str
    n: int
    engine: str
    results: list[SimulationResult]

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def interactions(self) -> np.ndarray:
        """Per-trial total interaction counts."""
        return np.asarray([r.interactions for r in self.results], dtype=np.int64)

    @property
    def effective_interactions(self) -> np.ndarray:
        return np.asarray(
            [r.effective_interactions for r in self.results], dtype=np.int64
        )

    @property
    def all_converged(self) -> bool:
        return all(r.converged for r in self.results)

    @property
    def mean_interactions(self) -> float:
        """The paper's reported statistic: average interactions to stability."""
        return float(self.interactions.mean())

    @property
    def std_interactions(self) -> float:
        return float(self.interactions.std(ddof=1)) if self.trials > 1 else 0.0

    @property
    def sem_interactions(self) -> float:
        """Standard error of the mean."""
        return self.std_interactions / np.sqrt(self.trials) if self.trials > 1 else 0.0

    def milestone_lists(self) -> list[list[int]]:
        """Tracked-state milestones of every trial (for Figure 4)."""
        return [r.tracked_milestones for r in self.results]

    def summary(self) -> str:
        return (
            f"{self.protocol} n={self.n} [{self.engine} x{self.trials}]: "
            f"mean={self.mean_interactions:.1f} "
            f"std={self.std_interactions:.1f} "
            f"range=[{int(self.interactions.min())}, {int(self.interactions.max())}]"
        )


def run_trials(
    protocol: Protocol,
    n: int | None = None,
    *,
    trials: int = 100,
    engine: Engine | str | None = None,
    seed: SeedLike = 0,
    initial_counts: Sequence[int] | np.ndarray | None = None,
    max_interactions: int | None = None,
    track_state: str | int | None = None,
    require_convergence: bool = True,
    progress: Callable[[int, SimulationResult], None] | None = None,
    workers: int = 1,
) -> TrialSet:
    """Run ``trials`` independent executions and collect the results.

    Parameters mirror :meth:`Engine.run`; additionally:

    trials:
        Number of independent executions (the paper uses 100).
    engine:
        An :class:`Engine` instance, a registered engine name (see
        :func:`~repro.engine.registry.available_engines`), or None for
        the default count-based engine.  Engines that expose a
        ``run_batch`` method (the ensemble engine) simulate all trials
        of a chunk in one call; the runner detects and uses it
        automatically.
    seed:
        Master seed; per-trial streams are spawned from it.
    require_convergence:
        Raise :class:`SimulationError` if any trial failed to stabilize
        within its budget (default True — averaging censored counts
        silently would bias the reproduction).
    progress:
        Optional callback ``(trial_index, result)`` after each trial.
    workers:
        Number of worker processes.  ``1`` (default) runs serially in
        this process; ``> 1`` splits the trials into ``workers``
        contiguous chunks of ``ceil(trials / workers)`` and fans the
        chunks out over a process pool (one submission per worker, not
        per trial, so pickling overhead is paid per chunk).  Because
        per-trial seeds are spawned up front, scalar-engine results are
        bit-identical to the serial run regardless of worker count or
        completion order.  Requires the engine and protocol to be
        picklable (all engines and shipped protocols are; agent-based
        engines with lambda scheduler factories are not).
    """
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials}")
    if workers < 1:
        raise SimulationError(f"workers must be positive, got {workers}")
    engine = resolve_engine(engine)
    seeds = spawn_seed_sequences(seed, trials)
    init = None if initial_counts is None else np.asarray(initial_counts, dtype=np.int64)

    if workers == 1:
        results = _run_chunk(
            engine, protocol, n, seeds, init, max_interactions, track_state
        )
    else:
        from concurrent.futures import ProcessPoolExecutor

        chunk = -(-trials // workers)  # ceil division
        spans = [(lo, min(lo + chunk, trials)) for lo in range(0, trials, chunk)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_chunk, engine, protocol, n, seeds[lo:hi], init,
                    max_interactions, track_state,
                )
                for lo, hi in spans
            ]
            results = [r for f in futures for r in f.result()]

    for t, result in enumerate(results):
        if require_convergence and not result.converged:
            raise SimulationError(
                f"trial {t} of {protocol.name} (n={result.n}) did not stabilize "
                f"within {result.interactions} interactions"
            )
        if progress is not None:
            progress(t, result)
    return TrialSet(
        protocol=protocol.name,
        n=results[0].n,
        engine=engine.name,
        results=results,
    )


def _run_chunk(
    engine: Engine,
    protocol: Protocol,
    n: int | None,
    seeds: Sequence[np.random.SeedSequence],
    initial_counts: np.ndarray | None,
    max_interactions: int | None,
    track_state: str | int | None,
) -> list[SimulationResult]:
    """A contiguous run of trials — module-level so pools can pickle it.

    Engines with a ``run_batch`` method simulate the whole chunk in one
    vectorized call; scalar engines loop, one independent run per seed.
    """
    run_batch = getattr(engine, "run_batch", None)
    if run_batch is not None:
        return run_batch(
            protocol,
            n,
            seeds=list(seeds),
            initial_counts=initial_counts,
            max_interactions=max_interactions,
            track_state=track_state,
        )
    return [
        engine.run(
            protocol,
            n,
            seed=s,
            initial_counts=initial_counts,
            max_interactions=max_interactions,
            track_state=track_state,
        )
        for s in seeds
    ]
