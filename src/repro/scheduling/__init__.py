"""Interaction schedulers: the paper's uniform random scheduler plus
graph-restricted, biased, and diagnostic variants."""

from .adversarial import RoundRobinScheduler, StickyScheduler, WeightedScheduler
from .base import PairBlock, Scheduler
from .fairness import PairCoverage, chi_square_uniformity, measure_pair_coverage
from .graph import GraphScheduler
from .spec import SchedulerSpec, parse_scheduler, scheduler_names
from .uniform import UniformScheduler

__all__ = [
    "Scheduler",
    "PairBlock",
    "SchedulerSpec",
    "parse_scheduler",
    "scheduler_names",
    "UniformScheduler",
    "GraphScheduler",
    "WeightedScheduler",
    "StickyScheduler",
    "RoundRobinScheduler",
    "PairCoverage",
    "measure_pair_coverage",
    "chi_square_uniformity",
]
