"""Canonical, picklable scheduler specifications.

Campaign specs, ``run_trials`` and the CLIs name schedulers by string;
:class:`SchedulerSpec` is the parsed, validated form of those names and
the single place the grammar lives::

    uniform                   two agents uniformly at random (the paper)
    roundrobin                deterministic sweep over all ordered pairs
                              (weakly fair, NOT globally fair)
    graph:complete            random edge of K_n (equals uniform)
    graph:cycle               random edge of the n-cycle
    graph:regular:<d>         random edge of a random d-regular graph
    graph:regular:<d>@<gs>    ... drawn with topology seed <gs>

The ``@<gs>`` suffix is the *graph seed*: it selects which d-regular
topology is drawn and is deliberately separate from the schedule seed
(see :meth:`~repro.scheduling.graph.GraphScheduler.random_regular`),
so the same name always denotes the same edge set.  Specs are frozen
dataclasses, so they pickle cleanly into campaign workers, and
:meth:`SchedulerSpec.build` has the ``(n, rng) -> Scheduler`` signature
:class:`~repro.engine.agent_based.AgentBasedEngine` expects of a
scheduler factory.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.errors import SchedulerError
from .adversarial import RoundRobinScheduler
from .base import Scheduler
from .graph import GraphScheduler
from .uniform import UniformScheduler

__all__ = ["SchedulerSpec", "parse_scheduler", "scheduler_names"]

#: Name templates accepted by :func:`parse_scheduler` (documentation
#: order; ``<d>``/``<gs>`` are integers).
_NAME_TEMPLATES = (
    "uniform",
    "roundrobin",
    "graph:complete",
    "graph:cycle",
    "graph:regular:<d>",
    "graph:regular:<d>@<graph_seed>",
)


def scheduler_names() -> tuple[str, ...]:
    """The accepted scheduler-name templates, for help text and errors."""
    return _NAME_TEMPLATES


@dataclass(frozen=True, slots=True)
class SchedulerSpec:
    """A parsed scheduler name.

    ``kind`` is ``"uniform"``, ``"roundrobin"`` or ``"graph"``; graph
    specs additionally carry the ``topology`` (``"complete"``,
    ``"cycle"`` or ``"regular"``), and regular ones the ``degree`` and
    ``graph_seed``.
    """

    kind: str
    topology: str | None = None
    degree: int | None = None
    graph_seed: int = 0

    # ------------------------------------------------------------------
    # Canonical name
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The canonical string form (parses back to an equal spec)."""
        if self.kind != "graph":
            return self.kind
        if self.topology != "regular":
            return f"graph:{self.topology}"
        base = f"graph:regular:{self.degree}"
        return base if self.graph_seed == 0 else f"{base}@{self.graph_seed}"

    @property
    def is_uniform(self) -> bool:
        """True when the spec denotes the paper's uniform scheduler.

        ``graph:complete`` is *not* reported uniform here even though
        the edge distribution coincides: it draws from a different RNG
        stream, so results are not bit-comparable with ``uniform``.
        """
        return self.kind == "uniform"

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, name: "str | SchedulerSpec") -> "SchedulerSpec":
        """Parse a scheduler name; specs pass through unchanged."""
        if isinstance(name, SchedulerSpec):
            return name
        if not isinstance(name, str):
            raise SchedulerError(
                f"scheduler must be a name or SchedulerSpec, got {type(name).__name__}"
            )
        text = name.strip().lower()
        if text == "uniform":
            return cls("uniform")
        if text in ("roundrobin", "round-robin"):
            return cls("roundrobin")
        if text.startswith("graph:"):
            rest = text[len("graph:"):]
            if rest in ("complete", "cycle"):
                return cls("graph", topology=rest)
            if rest.startswith("regular:"):
                arg = rest[len("regular:"):]
                degree_text, _, seed_text = arg.partition("@")
                try:
                    degree = int(degree_text)
                    graph_seed = int(seed_text) if seed_text else 0
                except ValueError:
                    raise SchedulerError(
                        f"bad graph:regular spec {name!r}; expected "
                        "graph:regular:<degree>[@<graph_seed>] with integers"
                    ) from None
                if degree < 2:
                    raise SchedulerError(
                        f"regular-graph degree must be >= 2, got {degree} "
                        "(degree-1 graphs are disconnected matchings)"
                    )
                return cls("graph", topology="regular", degree=degree,
                           graph_seed=graph_seed)
        raise SchedulerError(
            f"unknown scheduler {name!r}; accepted names: "
            + ", ".join(_NAME_TEMPLATES)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build_graph(self, n: int) -> nx.Graph:
        """The interaction graph this spec denotes for ``n`` agents.

        Deterministic in ``(spec, n)`` — topology construction never
        touches the schedule RNG, so the same spec always yields the
        same edge set regardless of run seed.
        """
        if self.kind != "graph":
            raise SchedulerError(
                f"scheduler {self.name!r} has no interaction graph"
            )
        if self.topology == "complete":
            return nx.complete_graph(n)
        if self.topology == "cycle":
            return nx.cycle_graph(n)
        assert self.topology == "regular"
        if self.degree >= n or (n * self.degree) % 2:
            raise SchedulerError(
                f"no {self.degree}-regular graph on {n} nodes "
                "(need degree < n and n*degree even)"
            )
        return nx.random_regular_graph(self.degree, n, seed=self.graph_seed)

    def edge_array(self, n: int) -> np.ndarray:
        """The graph's edges as the ``(E, 2)`` int64 array engines sample.

        Uses the exact conversion :class:`GraphScheduler` applies to
        its graph, so edge *order* — and therefore the sampled pair
        stream for a given RNG — matches the agent engine bit-for-bit.
        """
        return np.asarray(list(self.build_graph(n).edges), dtype=np.int64)

    def build(self, n: int, rng: np.random.Generator | None = None) -> Scheduler:
        """Instantiate the scheduler (the ``(n, rng)`` factory form)."""
        if self.kind == "uniform":
            return UniformScheduler(n, rng)
        if self.kind == "roundrobin":
            return RoundRobinScheduler(n, rng)
        return GraphScheduler(self.build_graph(n), rng)


def parse_scheduler(name: str | SchedulerSpec) -> SchedulerSpec:
    """Module-level alias for :meth:`SchedulerSpec.parse`."""
    return SchedulerSpec.parse(name)
