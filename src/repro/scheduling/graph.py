"""Interaction-graph-restricted scheduling.

The population protocol model is usually stated over a complete
interaction graph (any two agents may meet); restricted communication
graphs are a standard variation [4].  :class:`GraphScheduler` picks a
uniformly random *edge* of an arbitrary undirected graph each step,
with a random orientation.

On the complete graph this coincides with the uniform scheduler.  On a
connected non-complete graph the random-edge schedule is still globally
fair with probability 1 *for the reachable pairs*, but the paper's
protocol is only specified for the complete graph — the experiment
``examples/sensor_duty_cycling.py`` and the graph-scheduler tests use
this class to probe robustness (the protocol still stabilizes on dense
connected graphs, while sparse graphs slow it down).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.errors import SchedulerError
from ..core.rng import SeedLike
from .base import PairBlock, Scheduler

__all__ = ["GraphScheduler"]


class GraphScheduler(Scheduler):
    """Uniform random edges of an undirected interaction graph.

    Parameters
    ----------
    graph:
        An undirected networkx graph whose nodes are the integers
        ``0 .. n-1``.  Must have at least one edge and no self-loops.
    seed:
        RNG seed.
    """

    def __init__(self, graph: nx.Graph, seed: SeedLike = None) -> None:
        n = graph.number_of_nodes()
        nodes = set(graph.nodes)
        if nodes != set(range(n)):
            raise SchedulerError("graph nodes must be exactly the integers 0..n-1")
        if graph.number_of_edges() == 0:
            raise SchedulerError("interaction graph has no edges")
        if any(u == v for u, v in graph.edges):
            raise SchedulerError("interaction graph must not contain self-loops")
        super().__init__(n, seed)
        self._graph = graph
        self._edges = np.asarray(list(graph.edges), dtype=np.int64)

    @classmethod
    def complete(cls, n: int, seed: SeedLike = None) -> "GraphScheduler":
        """Scheduler over the complete graph K_n (equals uniform)."""
        return cls(nx.complete_graph(n), seed)

    @classmethod
    def cycle(cls, n: int, seed: SeedLike = None) -> "GraphScheduler":
        """Scheduler over the n-cycle — a sparse worst-ish case."""
        return cls(nx.cycle_graph(n), seed)

    @classmethod
    def random_regular(
        cls,
        degree: int,
        n: int,
        seed: SeedLike = None,
        *,
        graph_seed: int = 0,
    ) -> "GraphScheduler":
        """Scheduler over a random d-regular interaction graph.

        Structure and schedule are seeded *separately*: ``graph_seed``
        determines which d-regular graph is drawn (same value, same
        edge set — topologies are reproducible independently of the
        run), while ``seed`` drives only the edge-sampling RNG.
        Passing a different ``seed`` never changes the topology, and a
        different ``graph_seed`` never perturbs the schedule stream.
        """
        graph = nx.random_regular_graph(degree, n, seed=graph_seed)
        return cls(graph, seed)

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def edges(self) -> np.ndarray:
        """The ``(num_edges, 2)`` int64 edge array (read-only structure)."""
        return self._edges

    @property
    def is_connected(self) -> bool:
        return nx.is_connected(self._graph)

    def next_block(self, size: int, states: np.ndarray | None = None) -> PairBlock:
        idx = self._rng.integers(0, len(self._edges), size=size)
        pairs = self._edges[idx]
        a = pairs[:, 0].copy()
        b = pairs[:, 1].copy()
        # Random orientation so asymmetric rules see both roles.
        swap = self._rng.random(size) < 0.5
        a[swap], b[swap] = b[swap], a[swap].copy()
        return a, b

    @property
    def is_uniform(self) -> bool:
        # Uniform over all pairs only when the graph is complete.
        n = self._n
        return len(self._edges) == n * (n - 1) // 2
