"""Biased but (probabilistically) globally fair schedulers.

Global fairness quantifies over *all* executions; random schedulers
realize it with probability 1 as long as every pair keeps a positive,
bounded-away-from-zero probability at every step.  The schedulers here
preserve that property while being as unhelpful as possible, which lets
the tests check that the protocol's *correctness* does not secretly
rely on the uniform scheduler (only its *speed* does):

* :class:`WeightedScheduler` — agents have static popularity weights; a
  pair is chosen with probability proportional to the product of its
  weights.  Heavy skew starves (but never excludes) unpopular agents.
* :class:`StickyScheduler` — with probability ``p`` repeat the previous
  pair, otherwise draw uniformly.  Models bursty encounters (two birds
  flying together for a while).

A deterministic round-robin sweep over all pairs is *weakly* fair but
not globally fair; :class:`RoundRobinScheduler` is provided to
demonstrate the difference (the k-partition protocol can cycle forever
under it — see ``tests/scheduling/test_adversarial.py``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.errors import SchedulerError
from ..core.rng import SeedLike
from .base import PairBlock, Scheduler

__all__ = ["WeightedScheduler", "StickyScheduler", "RoundRobinScheduler"]


class WeightedScheduler(Scheduler):
    """Pairs drawn with probability proportional to weight products.

    Each interaction picks two distinct agents, each with probability
    proportional to its weight (rejection-free: the second draw uses
    the weights with the first agent removed).
    """

    def __init__(self, weights: Sequence[float], seed: SeedLike = None) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size < 2:
            raise SchedulerError("need a flat weight vector of length >= 2")
        if (w <= 0).any() or not np.isfinite(w).all():
            raise SchedulerError("weights must be positive and finite")
        super().__init__(len(w), seed)
        self._w = w
        self._p = w / w.sum()

    def next_block(self, size: int, states: np.ndarray | None = None) -> PairBlock:
        a = self._rng.choice(self._n, size=size, p=self._p)
        b = np.empty(size, dtype=np.int64)
        for i, ai in enumerate(a):
            # Renormalize with the initiator excluded.
            w = self._w.copy()
            w[ai] = 0.0
            b[i] = self._rng.choice(self._n, p=w / w.sum())
        return a.astype(np.int64), b


class StickyScheduler(Scheduler):
    """Repeat the previous pair with probability ``stickiness``.

    The remaining probability mass is uniform, so every pair retains
    probability at least ``(1 - stickiness) / (n(n-1))`` per step and
    infinite executions stay globally fair with probability 1.
    """

    def __init__(self, n: int, stickiness: float = 0.5, seed: SeedLike = None) -> None:
        if not 0.0 <= stickiness < 1.0:
            raise SchedulerError(f"stickiness must be in [0, 1), got {stickiness}")
        super().__init__(n, seed)
        self._stickiness = float(stickiness)
        self._last: tuple[int, int] | None = None

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["last"] = self._last
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._last = state["last"]

    def next_block(self, size: int, states: np.ndarray | None = None) -> PairBlock:
        n = self._n
        a = np.empty(size, dtype=np.int64)
        b = np.empty(size, dtype=np.int64)
        rng = self._rng
        last = self._last
        for i in range(size):
            if last is not None and rng.random() < self._stickiness:
                a[i], b[i] = last
            else:
                ai = int(rng.integers(0, n))
                bi = int(rng.integers(0, n - 1))
                if bi >= ai:
                    bi += 1
                a[i], b[i] = ai, bi
                last = (ai, bi)
        self._last = last
        return a, b


class RoundRobinScheduler(Scheduler):
    """Deterministic cyclic sweep over all ordered pairs.

    Every pair occurs infinitely often (weak fairness), but the
    schedule ignores configurations entirely, so it is **not** globally
    fair: a configuration that recurs does not get all its successors
    explored.  Protocols proved correct only under global fairness may
    livelock under this scheduler — which is precisely its purpose in
    the test suite.
    """

    def __init__(self, n: int, seed: SeedLike = None) -> None:
        super().__init__(n, seed)
        # The full ordered-pair table, precomputed once as one int64
        # ndarray: initiator-major, responders ascending with the
        # initiator skipped — the same enumeration order as
        # ``[(a, b) for a in range(n) for b in range(n) if a != b]``.
        a_col = np.repeat(np.arange(n, dtype=np.int64), n - 1)
        b_col = np.tile(np.arange(n - 1, dtype=np.int64), n)
        b_col += b_col >= a_col
        self._pairs = np.column_stack((a_col, b_col))
        self._pos = 0

    @property
    def pair_table(self) -> np.ndarray:
        """The precomputed ``(n(n-1), 2)`` ordered-pair table (read-only)."""
        return self._pairs

    def next_block(self, size: int, states: np.ndarray | None = None) -> PairBlock:
        total = len(self._pairs)
        idx = (self._pos + np.arange(size)) % total
        self._pos = int((self._pos + size) % total)
        pairs = self._pairs[idx]
        return pairs[:, 0].copy(), pairs[:, 1].copy()

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["pos"] = self._pos
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._pos = int(state["pos"])
