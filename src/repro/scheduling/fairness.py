"""Fairness diagnostics on finite execution prefixes.

Global fairness is a property of infinite executions, so it cannot be
*verified* on a finite trace; it can, however, be *falsified in spirit*
or characterized empirically.  These helpers quantify how evenly a
scheduler exercises the pair space — useful when comparing the uniform
scheduler against the biased ones and when sanity-checking a custom
scheduler before trusting simulation results obtained with it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
import numpy as np

from .base import Scheduler

__all__ = ["PairCoverage", "measure_pair_coverage", "chi_square_uniformity"]


@dataclass(frozen=True, slots=True)
class PairCoverage:
    """Summary of how a finite schedule covered the unordered pairs.

    Both derived statistics are ratios over ``samples`` and
    ``total_pairs``; a summary of zero samples (or of a population with
    no pairs, ``n < 2``) has no meaningful coverage or imbalance, so
    construction rejects those inputs outright rather than letting the
    properties return ``inf`` or divide by zero.
    """

    n: int
    samples: int
    #: Number of distinct unordered pairs observed.
    distinct_pairs: int
    #: Total number of unordered pairs, n(n-1)/2.
    total_pairs: int
    #: Smallest and largest per-pair observation counts.
    min_count: int
    max_count: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(
                f"pair coverage needs at least two agents, got n = {self.n}"
            )
        if self.samples < 1:
            raise ValueError(
                f"pair coverage needs at least one sample, got {self.samples}"
            )
        if self.total_pairs < 1:
            raise ValueError(
                f"total_pairs must be positive, got {self.total_pairs}"
            )

    @property
    def coverage(self) -> float:
        """Fraction of unordered pairs seen at least once."""
        return self.distinct_pairs / self.total_pairs

    @property
    def imbalance(self) -> float:
        """``max_count / mean_count`` — 1.0 is perfectly even."""
        return self.max_count / (self.samples / self.total_pairs)


def _count_pairs(
    scheduler: Scheduler, samples: int, block: int
) -> Counter[tuple[int, int]]:
    """Tally unordered-pair observations over ``samples`` schedule steps.

    Streams in blocks of at most ``block`` pairs so memory stays O(block
    + #distinct pairs) however large ``samples`` is — the shared core of
    both diagnostics below.
    """
    if block < 1:
        raise ValueError(f"block must be positive, got {block}")
    if samples < 1:
        raise ValueError(
            f"fairness diagnostics need at least one sample, got {samples}"
        )
    if scheduler.n < 2:
        raise ValueError(
            f"fairness diagnostics need at least two agents, got n = {scheduler.n}"
        )
    counter: Counter[tuple[int, int]] = Counter()
    remaining = samples
    while remaining > 0:
        take = min(block, remaining)
        a, b = scheduler.next_block(take)
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        counter.update(zip(lo.tolist(), hi.tolist()))
        remaining -= take
    return counter


def measure_pair_coverage(
    scheduler: Scheduler,
    samples: int,
    *,
    block: int = 4096,
) -> PairCoverage:
    """Drive ``scheduler`` for ``samples`` steps and summarize coverage."""
    counter = _count_pairs(scheduler, samples, block)
    n = scheduler.n
    total = n * (n - 1) // 2
    counts = list(counter.values())
    return PairCoverage(
        n=n,
        samples=samples,
        distinct_pairs=len(counter),
        total_pairs=total,
        min_count=min(counts) if len(counter) == total else 0,
        max_count=max(counts) if counts else 0,
    )


def chi_square_uniformity(
    scheduler: Scheduler,
    samples: int,
    *,
    block: int = 4096,
) -> float:
    """P-value of a chi-square test that pairs are uniform.

    A uniform scheduler should produce large p-values; a heavily biased
    one drives the p-value to ~0.  Requires ``samples`` to be large
    relative to the number of pairs (aim for >= 10 per pair).

    Pairs are streamed in blocks of at most ``block``, like
    :func:`measure_pair_coverage`, so memory is independent of
    ``samples`` (an earlier version materialized all ``samples`` pairs
    in one scheduler call).
    """
    from scipy import stats

    counter = _count_pairs(scheduler, samples, block)
    n = scheduler.n
    total = n * (n - 1) // 2
    observed = np.zeros(total, dtype=np.float64)
    idx = 0
    index_of = {}
    for i in range(n):
        for j in range(i + 1, n):
            index_of[(i, j)] = idx
            idx += 1
    for pair, c in counter.items():
        observed[index_of[pair]] = c
    expected = np.full(total, samples / total)
    stat = float(((observed - expected) ** 2 / expected).sum())
    return float(stats.chi2.sf(stat, df=total - 1))
