"""Scheduler interface.

A scheduler decides which pair of agents interacts next.  The paper's
simulations (Section 5) use the *uniformly random* scheduler — two
agents chosen uniformly at random at every step — whose infinite
executions are globally fair with probability 1.  The library also
provides biased and graph-restricted schedulers to probe how much the
protocol's behaviour depends on that choice.

Schedulers are agent-level objects: they see the population size (and
optionally the current states) and emit index pairs.  The count-based
engine does not use a scheduler — it is mathematically specialized to
the uniform scheduler (see :mod:`repro.engine.count_based`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.errors import SchedulerError
from ..core.rng import SeedLike, ensure_generator

__all__ = ["Scheduler", "PairBlock"]

#: A block of pre-sampled interaction pairs: two equal-length index arrays.
PairBlock = tuple[np.ndarray, np.ndarray]


class Scheduler(ABC):
    """Chooses interacting agent pairs for a population of ``n`` agents."""

    def __init__(self, n: int, seed: SeedLike = None) -> None:
        if n < 2:
            raise SchedulerError(f"need at least two agents to interact, got n = {n}")
        self._n = n
        self._rng = ensure_generator(seed)

    @property
    def n(self) -> int:
        return self._n

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @abstractmethod
    def next_block(self, size: int, states: np.ndarray | None = None) -> PairBlock:
        """Sample ``size`` interaction pairs (initiator, responder arrays).

        ``states`` is the current per-agent state vector; state-aware
        schedulers may use it, stateless ones ignore it.  Pairs must
        consist of two *distinct* agent indices.
        """

    def next_pair(self, states: np.ndarray | None = None) -> tuple[int, int]:
        """Sample a single interaction pair (convenience wrapper)."""
        a, b = self.next_block(1, states)
        return int(a[0]), int(b[0])

    @property
    def is_uniform(self) -> bool:
        """True when pairs are uniform over all unordered agent pairs.

        Only uniform schedulers are compatible with the count-based
        engine's closed-form null skipping.
        """
        return False

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """The scheduler's *mutable* run state, as a picklable dict.

        Sessions snapshot this instead of deep-copying the scheduler
        object, so immutable structure (edge arrays, pair tables,
        networkx graphs, weight vectors) is shared across snapshots and
        only the evolving state — the RNG, by default — is copied.
        Stateful subclasses extend the dict (call ``super()`` first).
        """
        return {"rng": self._rng.bit_generator.state}

    def restore_state(self, state: dict) -> None:
        """Rewind the scheduler to a :meth:`capture_state` dict, in place."""
        self._rng.bit_generator.state = state["rng"]
