"""The uniformly random scheduler — the paper's simulation model.

"In the simulations, we construct an execution by selecting two agents
uniformly at random in each configuration and making them interact.
Note that, if we construct an infinite execution by this way, the
execution satisfies global fairness with probability 1." (Section 5)

Pairs are pre-sampled in blocks with NumPy so the per-interaction
Python cost stays minimal.  The distinct-pair trick samples the
responder from ``n - 1`` slots and shifts it past the initiator, which
is exactly uniform over ordered distinct pairs (hence uniform over
unordered pairs with random orientation).
"""

from __future__ import annotations

import numpy as np

from ..core.rng import SeedLike
from .base import PairBlock, Scheduler

__all__ = ["UniformScheduler"]


class UniformScheduler(Scheduler):
    """Uniform random pairs over all ordered distinct agent pairs."""

    def __init__(self, n: int, seed: SeedLike = None) -> None:
        super().__init__(n, seed)

    def next_block(self, size: int, states: np.ndarray | None = None) -> PairBlock:
        n = self._n
        a = self._rng.integers(0, n, size=size)
        b = self._rng.integers(0, n - 1, size=size)
        b += b >= a  # shift past the initiator: uniform over the other n-1
        return a, b

    @property
    def is_uniform(self) -> bool:
        return True
