"""State spaces for population protocols.

A population protocol is a pair ``(Q, delta)`` where ``Q`` is a finite set
of agent states.  This module provides :class:`StateSpace`, an immutable,
ordered view of ``Q`` that maps human-readable state *names* to dense
integer *indices*.  All fast simulation paths operate on indices; names
appear only at API boundaries (construction, reporting, debugging).

The uniform k-partition problem additionally needs a *group map*
``f : Q -> {1, ..., k}`` assigning every state to one of ``k`` output
groups (Section 2.2 of the paper).  The group map is stored alongside the
state list because it is a property of the problem encoding, not of the
dynamics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .errors import ProtocolError, UnknownStateError

__all__ = ["StateSpace"]


class StateSpace:
    """An immutable ordered set of state names with an optional group map.

    Parameters
    ----------
    names:
        State names, in index order.  Names must be unique, non-empty
        strings.
    groups:
        Optional mapping from state name to group index (1-based, matching
        the paper's convention ``f : Q -> {1, ..., k}``).  If given, every
        state must be assigned a group.
    num_groups:
        Number of groups ``k``.  If omitted it defaults to the largest
        group index present in ``groups`` (or ``0`` when no group map is
        supplied).

    Examples
    --------
    >>> space = StateSpace(["a", "b"], groups={"a": 1, "b": 2})
    >>> space.index("b")
    1
    >>> space.group_of("b")
    2
    """

    __slots__ = ("_names", "_index", "_groups", "_num_groups", "_group_array")

    def __init__(
        self,
        names: Sequence[str],
        groups: Mapping[str, int] | None = None,
        num_groups: int | None = None,
    ) -> None:
        names = tuple(names)
        if not names:
            raise ProtocolError("a state space must contain at least one state")
        for name in names:
            if not isinstance(name, str) or not name:
                raise ProtocolError(f"state names must be non-empty strings, got {name!r}")
        index = {name: i for i, name in enumerate(names)}
        if len(index) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ProtocolError(f"duplicate state names: {dupes}")
        self._names = names
        self._index = index

        if groups is None:
            self._groups: dict[str, int] = {}
            self._num_groups = int(num_groups or 0)
            self._group_array = np.zeros(len(names), dtype=np.int64)
        else:
            missing = [n for n in names if n not in groups]
            if missing:
                raise ProtocolError(f"group map missing states: {missing}")
            extra = [n for n in groups if n not in index]
            if extra:
                raise ProtocolError(f"group map references unknown states: {sorted(extra)}")
            for name, g in groups.items():
                if not isinstance(g, int) or g < 1:
                    raise ProtocolError(
                        f"group indices must be positive integers, got f({name!r}) = {g!r}"
                    )
            inferred = max(groups.values())
            k = int(num_groups) if num_groups is not None else inferred
            if k < inferred:
                raise ProtocolError(
                    f"num_groups = {k} is smaller than the largest assigned group {inferred}"
                )
            self._groups = dict(groups)
            self._num_groups = k
            self._group_array = np.asarray([groups[n] for n in names], dtype=np.int64)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateSpace):
            return NotImplemented
        return (
            self._names == other._names
            and self._groups == other._groups
            and self._num_groups == other._num_groups
        )

    def __hash__(self) -> int:
        return hash((self._names, tuple(sorted(self._groups.items())), self._num_groups))

    def __repr__(self) -> str:
        return f"StateSpace({len(self)} states, {self._num_groups} groups)"

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """State names in index order."""
        return self._names

    @property
    def num_groups(self) -> int:
        """Number of output groups ``k`` (0 when no group map is attached)."""
        return self._num_groups

    def index(self, name: str) -> int:
        """Return the dense index of state ``name``.

        Raises
        ------
        UnknownStateError
            If ``name`` is not part of this state space.
        """
        try:
            return self._index[name]
        except KeyError:
            raise UnknownStateError(f"unknown state {name!r}") from None

    def indices(self, names: Iterable[str]) -> list[int]:
        """Return indices for several state names at once."""
        return [self.index(n) for n in names]

    def name(self, idx: int) -> str:
        """Return the name of the state with index ``idx``."""
        try:
            return self._names[idx]
        except IndexError:
            raise UnknownStateError(
                f"state index {idx} out of range for {len(self)} states"
            ) from None

    def group_of(self, state: str | int) -> int:
        """Return ``f(state)``, the group that ``state`` maps to.

        ``state`` may be a name or an index.  Raises
        :class:`~repro.core.errors.ProtocolError` when no group map is
        attached.
        """
        if not self._groups:
            raise ProtocolError("this state space has no group map")
        if isinstance(state, str):
            state = self.index(state)
        return int(self._group_array[state])

    @property
    def group_array(self) -> np.ndarray:
        """Vector ``g`` with ``g[i] = f(state_i)`` (0 where unmapped).

        The returned array is a copy; mutating it does not affect the
        state space.
        """
        return self._group_array.copy()

    def with_groups(self, groups: Mapping[str, int], num_groups: int | None = None) -> "StateSpace":
        """Return a copy of this state space with a (new) group map."""
        return StateSpace(self._names, groups=groups, num_groups=num_groups)
