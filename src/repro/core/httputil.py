"""Shared request-parsing helpers for the stdlib HTTP daemons.

The campaign and session services grew the same two parsing bugs
independently — ``int(query["limit"])`` and ``int(Content-Length)``
turning malformed client input into unhandled ``ValueError`` (a 500,
or a dropped connection).  Both daemons now parse through this module
so a bad request is a :class:`BadRequest` (rendered as a JSON 400)
in exactly one place.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ["BadRequest", "parse_limit", "parse_content_length"]

#: Upper bound every ``?limit=`` clamp shares across services.
MAX_LIMIT = 1000

#: Request bodies above this are rejected outright (64 MiB — far above
#: any legitimate grid submission, far below a memory-exhaustion write).
MAX_BODY_BYTES = 64 * 1024 * 1024


class BadRequest(ValueError):
    """Client input failed validation; render as an HTTP 400."""


def parse_limit(
    raw: str | None, *, default: int = 100, maximum: int = MAX_LIMIT
) -> int:
    """Validate and clamp a ``?limit=`` query value.

    ``None`` (absent) yields ``default``; a non-integer or non-positive
    value raises :class:`BadRequest`; anything above ``maximum`` is
    clamped.  Never lets an unvalidated value reach SQL.
    """
    if raw is None:
        return min(default, maximum)
    try:
        value = int(raw)
    except ValueError:
        raise BadRequest(f"limit must be an integer, got {raw!r}") from None
    if value < 1:
        raise BadRequest(f"limit must be positive, got {value}")
    return min(value, maximum)


def parse_content_length(headers: Mapping[str, str] | None, raw: str | None = None) -> int:
    """Validate a ``Content-Length`` header value.

    Accepts either a headers mapping or the raw header string (pass
    ``headers=None``).  Absent means 0.  A malformed or negative value
    raises :class:`BadRequest` instead of an unhandled ``ValueError``
    that drops the connection without a response; an absurdly large
    one is rejected before any read.
    """
    if headers is not None:
        raw = headers.get("Content-Length")
    if raw is None or raw == "":
        return 0
    try:
        length = int(raw)
    except ValueError:
        raise BadRequest(
            f"malformed Content-Length header: {raw!r}"
        ) from None
    if length < 0:
        raise BadRequest(f"negative Content-Length: {length}")
    if length > MAX_BODY_BYTES:
        raise BadRequest(
            f"Content-Length {length} exceeds the {MAX_BODY_BYTES}-byte cap"
        )
    return length
