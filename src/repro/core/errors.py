"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError``/``ValueError`` from
argument validation) from semantic model errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ProtocolError",
    "NonDeterministicProtocolError",
    "AsymmetricTransitionError",
    "UnknownStateError",
    "ConfigurationError",
    "SimulationError",
    "ConvergenceError",
    "SchedulerError",
    "ExperimentError",
    "AnalysisError",
    "UnknownEngineError",
    "UnknownProtocolError",
    "CampaignError",
    "StoreClosedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ProtocolError(ReproError):
    """A protocol definition is structurally invalid."""


class NonDeterministicProtocolError(ProtocolError):
    """Two distinct transitions were registered for the same ordered pair.

    Deterministic protocols (the only kind studied in the paper) allow at
    most one transition per ordered state pair.
    """


class AsymmetricTransitionError(ProtocolError):
    """A transition violates the symmetry requirement.

    A transition ``(p, p) -> (p', q')`` with ``p' != q'`` is *asymmetric*;
    symmetric protocols (Section 2.1 of the paper) forbid such transitions
    because two agents in identical states cannot break symmetry in a
    single interaction.
    """


class UnknownStateError(ProtocolError):
    """A state name or index was used that is not part of the state space."""


class ConfigurationError(ReproError):
    """A configuration (count vector / agent assignment) is malformed."""


class SimulationError(ReproError):
    """A simulation engine encountered an unrecoverable condition."""


class ConvergenceError(SimulationError):
    """A simulation exceeded its interaction budget without stabilizing."""

    def __init__(self, message: str, interactions: int | None = None) -> None:
        super().__init__(message)
        #: Number of interactions performed before giving up (if known).
        self.interactions = interactions


class SchedulerError(ReproError):
    """A scheduler was asked to operate on an unsupported population."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class AnalysisError(ReproError):
    """An analysis routine was given data it cannot fit or invert."""


class UnknownEngineError(SimulationError, ValueError):
    """An engine name is not present in the engine registry.

    Doubles as :class:`ValueError` so registry lookups behave like
    ordinary bad-argument errors for callers outside the library.
    """


class UnknownProtocolError(ProtocolError, ValueError):
    """A protocol name is not present in the protocol registry."""


class CampaignError(ReproError):
    """The campaign subsystem (job store / executor / service) failed."""


class StoreClosedError(CampaignError):
    """A store method was called after :meth:`CampaignStore.close`.

    Handler threads of a shutting-down service can race the owner's
    ``close()``; a named error makes that window loud instead of
    leaking fresh SQLite connections onto a closed store.
    """
