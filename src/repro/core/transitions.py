"""Transition tables for population protocols.

A transition ``(p, q) -> (p', q')`` describes what happens when an agent
in state ``p`` (the *initiator*) interacts with an agent in state ``q``
(the *responder*): they move to ``p'`` and ``q'`` respectively.

The paper considers *deterministic* protocols (at most one transition per
ordered pair) and, for its main result, *symmetric* protocols: a
transition is symmetric unless ``p == q`` and ``p' != q'`` (Section 2.1).
The scheduler in the paper picks an unordered agent pair; for symmetric
rule sets the orientation is irrelevant, while for asymmetric baselines
(e.g. the approximate-partition protocol of Delporte-Gallet et al.) the
engines assign the initiator role uniformly at random.

:class:`TransitionTable` stores rules on *ordered* pairs.  The convenience
constructor :meth:`TransitionTable.add` registers a rule together with its
mirror ``(q, p) -> (q', p')`` so that protocol authors can write rules the
way papers print them — once per unordered pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from .errors import (
    AsymmetricTransitionError,
    NonDeterministicProtocolError,
    ProtocolError,
)
from .state import StateSpace

__all__ = ["Transition", "TransitionTable"]


@dataclass(frozen=True, slots=True)
class Transition:
    """A single transition ``(p, q) -> (p2, q2)`` on state names."""

    p: str
    q: str
    p2: str
    q2: str

    @property
    def is_identity(self) -> bool:
        """True when the transition changes neither participant."""
        return self.p == self.p2 and self.q == self.q2

    @property
    def is_symmetric(self) -> bool:
        """True unless ``p == q`` and the outputs differ (paper Sec. 2.1)."""
        return not (self.p == self.q and self.p2 != self.q2)

    @property
    def mirror(self) -> "Transition":
        """The same rule seen from the responder's side."""
        return Transition(self.q, self.p, self.q2, self.p2)

    def __str__(self) -> str:
        return f"({self.p}, {self.q}) -> ({self.p2}, {self.q2})"


class TransitionTable:
    """A deterministic set of transitions over a :class:`StateSpace`.

    Rules are stored per ordered input pair.  Pairs with no registered
    rule are *null*: an interaction between such states leaves both agents
    unchanged (the standard population-protocol convention).

    Parameters
    ----------
    space:
        The state space the transitions are defined over.
    """

    __slots__ = ("_space", "_rules")

    def __init__(self, space: StateSpace) -> None:
        self._space = space
        self._rules: dict[tuple[str, str], Transition] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, p: str, q: str, p2: str, q2: str, *, mirror: bool = True) -> None:
        """Register the rule ``(p, q) -> (p2, q2)``.

        With ``mirror=True`` (the default) the mirrored rule
        ``(q, p) -> (q2, p2)`` is registered as well, so a rule written
        once covers both orientations of the interaction, exactly as the
        paper's rule listings are meant to be read.

        Raises
        ------
        NonDeterministicProtocolError
            If a *different* rule is already registered for the same
            ordered pair.  Re-adding an identical rule is a no-op.
        """
        for t in self._expand(Transition(p, q, p2, q2), mirror):
            existing = self._rules.get((t.p, t.q))
            if existing is not None and existing != t:
                raise NonDeterministicProtocolError(
                    f"conflicting rules for ({t.p}, {t.q}): "
                    f"existing {existing}, new {t}"
                )
            self._rules[(t.p, t.q)] = t

    def add_many(self, rules: Iterable[tuple[str, str, str, str]], *, mirror: bool = True) -> None:
        """Register several rules given as ``(p, q, p2, q2)`` tuples."""
        for p, q, p2, q2 in rules:
            self.add(p, q, p2, q2, mirror=mirror)

    def _expand(self, t: Transition, mirror: bool) -> Iterator[Transition]:
        for name in (t.p, t.q, t.p2, t.q2):
            if name not in self._space:
                raise ProtocolError(f"rule {t} references unknown state {name!r}")
        yield t
        if mirror and t.p != t.q:
            yield t.mirror

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def space(self) -> StateSpace:
        return self._space

    def lookup(self, p: str, q: str) -> Transition | None:
        """Return the rule for ordered pair ``(p, q)`` or None if null."""
        return self._rules.get((p, q))

    def apply(self, p: str, q: str) -> tuple[str, str]:
        """Return the post-states of an interaction ``(p, q)``.

        Null pairs return the inputs unchanged.
        """
        t = self._rules.get((p, q))
        if t is None:
            return p, q
        return t.p2, t.q2

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Transition]:
        return iter(self._rules.values())

    def non_null_rules(self) -> list[Transition]:
        """All registered rules that actually change some state."""
        return [t for t in self._rules.values() if not t.is_identity]

    @property
    def is_symmetric(self) -> bool:
        """True when every registered rule is symmetric (paper Sec. 2.1)."""
        return all(t.is_symmetric for t in self._rules.values())

    def asymmetric_rules(self) -> list[Transition]:
        """The rules that break symmetry (empty for symmetric protocols)."""
        return [t for t in self._rules.values() if not t.is_symmetric]

    @property
    def is_oriented(self) -> bool:
        """True when some pair's two orientations are not mirrors.

        Oriented tables describe initiator/responder-sensitive protocols
        (e.g. initiator-wins majority, or products of asymmetric with
        symmetric protocols).  They are fully supported: agent engines
        read the ordered pair as sampled, and the compiler gives each
        orientation its own interaction class.
        """
        for (p, q), t in self._rules.items():
            if p == q:
                continue
            other = self._rules.get((q, p))
            if other is not None and other != t.mirror:
                return True
        return False

    def validate(self) -> None:
        """Check structural sanity.

        Determinism is enforced at :meth:`add` time and state existence
        at rule registration, so this is currently a cheap re-assertion
        retained for API stability (subclasses may extend it).
        """
        for (p, q), t in self._rules.items():
            if (t.p, t.q) != (p, q):
                raise NonDeterministicProtocolError(
                    f"rule stored under wrong key: ({p}, {q}) holds {t}"
                )

    def __repr__(self) -> str:
        return f"TransitionTable({len(self._rules)} ordered rules over {len(self._space)} states)"
