"""The :class:`Protocol` object — a population protocol ``P = (Q, delta)``.

A protocol bundles a :class:`~repro.core.state.StateSpace`, a
:class:`~repro.core.transitions.TransitionTable`, a designated initial
state (the paper assumes designated initial states throughout), and the
group map ``f`` used to read off the output partition.

Protocols are *behaviour descriptions*; they hold no mutable simulation
state.  Engines consume a protocol through its compiled form (see
:mod:`repro.core.compiler`).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .compiler import CompiledProtocol, compile_protocol
from .errors import AsymmetricTransitionError, ProtocolError
from .state import StateSpace
from .transitions import Transition, TransitionTable

__all__ = ["Protocol", "StabilitySignature"]

# A stability predicate receives the vector of per-state agent counts and
# decides whether the configuration is stable in the sense of Section 2.2
# (the group of every agent can never change again).
StabilityPredicate = Callable[[np.ndarray], bool]

# A batched stability predicate receives a (B, S) matrix of B count
# vectors and returns a boolean vector of length B — the vectorized
# form the ensemble engine evaluates once per jump-chain step.
BatchStabilityPredicate = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class StabilitySignature:
    """Stability as a conjunction of count-sum equality constraints.

    ``groups`` is a tuple of ``(state_indices, expected)`` pairs; a
    configuration is stable iff, for every pair, the counts at
    ``state_indices`` sum to ``expected``.  This is the declarative
    form of a stability predicate: unlike an opaque callable it can be
    flattened to integer arrays and evaluated inside a compiled kernel
    (see :mod:`repro.engine.kernels`) with exactly the same result.

    Group order matters only for speed, never for the result — kernels
    short-circuit on the first violated constraint, so protocols should
    put their cheapest near-always-rejecting constraint first (the
    k-partition protocol leads with ``#g_k == floor(n/k)``, the same
    cheap reject its scalar predicate uses).
    """

    groups: tuple[tuple[tuple[int, ...], int], ...]

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten to ``(offsets, indices, expected)`` int64 arrays.

        ``indices[offsets[g]:offsets[g+1]]`` are the state indices of
        constraint ``g`` and ``expected[g]`` its required sum — the CSR
        layout the kernels consume.
        """
        offsets = np.zeros(len(self.groups) + 1, dtype=np.int64)
        idx: list[int] = []
        want: list[int] = []
        for g, (states, expected) in enumerate(self.groups):
            idx.extend(states)
            want.append(expected)
            offsets[g + 1] = len(idx)
        return (
            offsets,
            np.asarray(idx, dtype=np.int64),
            np.asarray(want, dtype=np.int64),
        )

    def evaluate(self, counts: Sequence[int] | np.ndarray) -> bool:
        """Reference evaluation (what the kernels compute natively)."""
        for states, expected in self.groups:
            if sum(int(counts[i]) for i in states) != expected:
                return False
        return True


class Protocol:
    """A deterministic population protocol with designated initial states.

    Parameters
    ----------
    name:
        Human-readable protocol name (used in reports and registries).
    space:
        The state space ``Q`` including its group map ``f``.
    transitions:
        The transition table ``delta``.
    initial_state:
        The designated initial state ``s0``; every agent starts here
        unless an explicit initial configuration is supplied to an engine.
    initial_counts_factory:
        Optional factory ``n -> count_vector`` producing the designated
        initial configuration for populations of size ``n``.  Protocols
        whose model distinguishes agents at start — e.g. the weak-fairness
        base-station construction, where exactly one agent begins as the
        coordinator — supply it; :meth:`initial_counts` then delegates to
        the factory instead of placing all ``n`` agents in
        ``initial_state``.  The factory must return a non-negative vector
        of length ``num_states`` summing to ``n``.
    stability_predicate_factory:
        Optional factory ``n -> predicate(counts) -> bool`` producing an
        exact stability test for populations of size ``n``.  Protocols
        whose stable configurations are *silent* can omit it — engines
        fall back to silence detection (no applicable non-null pair).
        The k-partition protocol needs an explicit predicate because its
        stable configuration for ``n mod k == 1`` still admits
        group-preserving ``initial <-> initial'`` flips (rule 4) and is
        therefore stable but not silent.
    batch_stability_predicate_factory:
        Optional factory ``n -> predicate(count_matrix) -> bool_vector``
        producing a *vectorized* stability test over ``(B, S)`` count
        matrices.  When omitted, :meth:`batch_stability_predicate`
        falls back to evaluating the scalar predicate row by row, so
        providing it is purely a performance optimization (the ensemble
        engine evaluates it once per jump-chain step).
    stability_signature_factory:
        Optional factory ``n -> StabilitySignature`` giving the scalar
        predicate in declarative count-sum form.  Must agree with the
        scalar predicate on every count vector — the compiled kernel
        tiers (``count-jit``, ``batch-jit``) evaluate the signature in
        native code and silently fall back to the Python loop for
        protocols that provide a predicate without a signature, so
        supplying it is purely a performance optimization.
    metadata:
        Free-form information (e.g. ``{"k": 5, "paper": "..."}``).
    """

    def __init__(
        self,
        name: str,
        space: StateSpace,
        transitions: TransitionTable,
        initial_state: str | None,
        *,
        initial_counts_factory: Callable[[int], np.ndarray] | None = None,
        stability_predicate_factory: Callable[[int], StabilityPredicate] | None = None,
        batch_stability_predicate_factory: (
            Callable[[int], BatchStabilityPredicate] | None
        ) = None,
        stability_signature_factory: (
            Callable[[int], StabilitySignature] | None
        ) = None,
        metadata: Mapping[str, object] | None = None,
        require_symmetric: bool = False,
    ) -> None:
        """See class docstring; additionally ``require_symmetric=True``
        makes construction fail with
        :class:`~repro.core.errors.AsymmetricTransitionError` if any rule
        breaks symmetry — protocols that *claim* symmetry (like the
        paper's Algorithm 1) assert it at build time this way."""
        if transitions.space is not space:
            raise ProtocolError("transition table is defined over a different state space")
        if initial_state is not None and initial_state not in space:
            raise ProtocolError(f"initial state {initial_state!r} is not in the state space")
        transitions.validate()
        if require_symmetric:
            offenders = transitions.asymmetric_rules()
            if offenders:
                listing = "; ".join(str(t) for t in offenders[:5])
                raise AsymmetricTransitionError(
                    f"protocol {name!r} declared symmetric but has "
                    f"{len(offenders)} asymmetric rule(s): {listing}"
                )
        self._name = name
        self._space = space
        self._transitions = transitions
        self._initial_state = initial_state
        self._initial_counts_factory = initial_counts_factory
        self._stability_factory = stability_predicate_factory
        self._batch_stability_factory = batch_stability_predicate_factory
        self._signature_factory = stability_signature_factory
        self._metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def space(self) -> StateSpace:
        return self._space

    @property
    def states(self) -> tuple[str, ...]:
        """State names — ``Q`` in the paper's notation."""
        return self._space.names

    @property
    def num_states(self) -> int:
        """``|Q|`` — the space complexity the paper optimizes (3k-2)."""
        return len(self._space)

    @property
    def num_groups(self) -> int:
        """``k`` — the number of output groups."""
        return self._space.num_groups

    @property
    def transitions(self) -> TransitionTable:
        return self._transitions

    @property
    def initial_state(self) -> str | None:
        return self._initial_state

    @property
    def metadata(self) -> dict[str, object]:
        return dict(self._metadata)

    @property
    def is_symmetric(self) -> bool:
        """Whether the protocol is symmetric (paper Sec. 2.1)."""
        return self._transitions.is_symmetric

    def rules(self) -> list[Transition]:
        """All registered (ordered) rules."""
        return list(self._transitions)

    # ------------------------------------------------------------------
    # Compiled form
    # ------------------------------------------------------------------
    @cached_property
    def compiled(self) -> CompiledProtocol:
        """Packed NumPy tables for the fast engines (cached)."""
        return compile_protocol(self)

    # ------------------------------------------------------------------
    # Semantics helpers
    # ------------------------------------------------------------------
    def initial_counts(self, n: int) -> np.ndarray:
        """Count vector of the designated initial configuration ``C0``."""
        if n < 1:
            raise ProtocolError(f"population size must be positive, got {n}")
        if self._initial_counts_factory is not None:
            counts = np.asarray(self._initial_counts_factory(n), dtype=np.int64)
            if counts.shape != (self.num_states,):
                raise ProtocolError(
                    f"initial_counts_factory of {self._name!r} returned shape "
                    f"{counts.shape}, expected ({self.num_states},)"
                )
            if (counts < 0).any() or int(counts.sum()) != n:
                raise ProtocolError(
                    f"initial_counts_factory of {self._name!r} returned an "
                    f"invalid configuration for n = {n}"
                )
            return counts
        if self._initial_state is None:
            raise ProtocolError(
                f"protocol {self._name!r} has no designated initial state; "
                "supply an explicit initial configuration"
            )
        counts = np.zeros(self.num_states, dtype=np.int64)
        counts[self._space.index(self._initial_state)] = n
        return counts

    def stability_predicate(self, n: int) -> StabilityPredicate | None:
        """Exact stability test for population size ``n`` (or None)."""
        if self._stability_factory is None:
            return None
        return self._stability_factory(n)

    def stability_signature(self, n: int) -> StabilitySignature | None:
        """Declarative count-sum form of the stability test (or None).

        ``None`` means the protocol has no signature — either it has no
        stability predicate at all (silence is then the criterion,
        which kernels handle natively) or its predicate cannot be
        expressed as count-sum equalities (kernel tiers then fall back
        to the Python loop).
        """
        if self._signature_factory is None:
            return None
        return self._signature_factory(n)

    def batch_stability_predicate(self, n: int) -> BatchStabilityPredicate | None:
        """Vectorized stability test over ``(B, S)`` count matrices.

        Protocols that supply a ``batch_stability_predicate_factory``
        get their native vectorized test; protocols with only a scalar
        predicate get a row-wise wrapper; protocols with neither return
        None (engines then fall back to silence detection).
        """
        if self._batch_stability_factory is not None:
            return self._batch_stability_factory(n)
        pred = self.stability_predicate(n)
        if pred is None:
            return None

        def batched(count_matrix: np.ndarray) -> np.ndarray:
            return np.fromiter(
                (pred(row) for row in count_matrix),
                dtype=bool,
                count=len(count_matrix),
            )

        return batched

    def group_sizes(self, counts: Sequence[int] | np.ndarray) -> np.ndarray:
        """Per-group agent totals under the group map ``f``.

        Returns a vector ``sizes`` of length ``k`` with
        ``sizes[i-1] = |{agents a : f(s(a)) = i}|``.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.num_states,):
            raise ProtocolError(
                f"counts vector has shape {counts.shape}, expected ({self.num_states},)"
            )
        k = self.num_groups
        if k == 0:
            raise ProtocolError(f"protocol {self._name!r} has no group map")
        sizes = np.zeros(k, dtype=np.int64)
        np.add.at(sizes, self._space.group_array - 1, counts)
        return sizes

    def describe(self) -> str:
        """Human-readable protocol summary: states, groups, and rules.

        Rules are listed once per unordered pair (mirrors folded), in
        the paper's notation ``(p, q) -> (p', q')``.
        """
        lines = [
            f"protocol {self._name}",
            f"  states ({self.num_states}): {', '.join(self.states)}",
        ]
        if self._initial_state is not None:
            lines.append(f"  designated initial state: {self._initial_state}")
        if self.num_groups:
            by_group: dict[int, list[str]] = {}
            for name in self.states:
                by_group.setdefault(self._space.group_of(name), []).append(name)
            lines.append(f"  groups ({self.num_groups}):")
            for g in sorted(by_group):
                lines.append(f"    f = {g}: {', '.join(by_group[g])}")
        lines.append(
            f"  transitions ({'symmetric' if self.is_symmetric else 'asymmetric'}):"
        )
        seen: set[frozenset[str]] = set()
        for t in self._transitions:
            key = frozenset((t.p, t.q)) if t.p != t.q else frozenset((t.p,))
            if key in seen:
                continue
            seen.add(key)
            lines.append(f"    {t}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        sym = "symmetric" if self.is_symmetric else "asymmetric"
        return (
            f"Protocol({self._name!r}, {self.num_states} states, "
            f"{self.num_groups} groups, {sym})"
        )
