"""Randomness discipline for reproducible experiments.

Every stochastic component takes either a seed-like value or a
``numpy.random.Generator``.  Multi-trial runs derive independent,
collision-free per-trial streams with ``SeedSequence.spawn`` so that

* trial ``i`` of an experiment is reproducible in isolation,
* adding trials never perturbs earlier ones, and
* the same master seed yields the same results regardless of execution
  order (serial or pooled).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_generator", "spawn_generators", "spawn_seed_sequences", "SeedLike"]

#: Anything acceptable as a reproducibility seed.
SeedLike = int | np.random.SeedSequence | np.random.Generator | None


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Passing an existing generator returns it unchanged (shared stream);
    anything else creates a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent seed sequences from ``seed``.

    Raises
    ------
    TypeError
        If ``seed`` is a ``Generator`` — generators cannot be split
        reproducibly, so callers must pass a seed or ``SeedSequence``
        when independent streams are needed.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "cannot spawn independent streams from a Generator; "
            "pass an int seed or a SeedSequence instead"
        )
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return ss.spawn(count)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from ``seed``."""
    return [np.random.default_rng(s) for s in spawn_seed_sequences(seed, count)]
