"""Populations — explicit per-agent state vectors.

Most of the library works on count vectors (see
:mod:`repro.core.configuration`), but agent identity matters for three
things: scripted executions that replay the paper's Figure 1/2 examples,
interaction-graph-restricted schedulers, and tests that track individual
group membership.  :class:`Population` is the mutable agent-level view.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .configuration import Configuration
from .errors import ConfigurationError
from .protocol import Protocol

__all__ = ["Population"]


class Population:
    """A mutable array of agent states for a given protocol.

    Parameters
    ----------
    protocol:
        The protocol the agents run.
    states:
        Initial agent states: either a sequence of state names, a
        sequence of state indices, or None to place all agents in the
        protocol's designated initial state (requires ``n``).
    n:
        Population size when ``states`` is None.
    """

    __slots__ = ("_protocol", "_states", "_counts")

    def __init__(
        self,
        protocol: Protocol,
        states: Sequence[str] | Sequence[int] | np.ndarray | None = None,
        *,
        n: int | None = None,
    ) -> None:
        self._protocol = protocol
        if states is None:
            if n is None:
                raise ConfigurationError("supply either explicit states or a population size n")
            if protocol.initial_state is None:
                raise ConfigurationError(
                    "protocol has no designated initial state; supply explicit states"
                )
            s0 = protocol.space.index(protocol.initial_state)
            self._states = np.full(n, s0, dtype=np.int32)
        else:
            if n is not None and n != len(states):
                raise ConfigurationError(f"n={n} does not match len(states)={len(states)}")
            if len(states) == 0:
                raise ConfigurationError("a population must contain at least one agent")
            first = states[0]
            if isinstance(first, str):
                idx = [protocol.space.index(s) for s in states]  # type: ignore[arg-type]
                self._states = np.asarray(idx, dtype=np.int32)
            else:
                arr = np.asarray(states, dtype=np.int32)
                if arr.ndim != 1:
                    raise ConfigurationError("states must be a flat sequence")
                if (arr < 0).any() or (arr >= protocol.num_states).any():
                    raise ConfigurationError("state index out of range")
                self._states = arr.copy()
        self._counts = np.bincount(self._states, minlength=protocol.num_states).astype(np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> Protocol:
        return self._protocol

    @property
    def n(self) -> int:
        return int(self._states.size)

    @property
    def state_indices(self) -> np.ndarray:
        """Read-only view of per-agent state indices."""
        v = self._states.view()
        v.setflags(write=False)
        return v

    @property
    def counts(self) -> np.ndarray:
        """Read-only per-state counts (kept in sync with the agents)."""
        v = self._counts.view()
        v.setflags(write=False)
        return v

    def state_of(self, agent: int) -> str:
        """State name of agent ``agent`` (0-based)."""
        return self._protocol.space.name(int(self._states[agent]))

    def group_of(self, agent: int) -> int:
        """Current group ``f(s(agent))`` of an agent."""
        return self._protocol.space.group_of(int(self._states[agent]))

    def state_names(self) -> list[str]:
        """All agent states as names, in agent order."""
        names = self._protocol.space.names
        return [names[i] for i in self._states]

    def configuration(self) -> Configuration:
        """Snapshot the current counts as an immutable configuration."""
        return Configuration(self._protocol, self._counts)

    def group_sizes(self) -> np.ndarray:
        """Per-group totals of the current assignment."""
        return self._protocol.group_sizes(self._counts)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def interact(self, a: int, b: int) -> bool:
        """Perform one interaction between agents ``a`` and ``b``.

        Agent ``a`` is the initiator (relevant only for asymmetric
        protocols).  Returns True when either agent changed state.
        """
        if a == b:
            raise ConfigurationError("an agent cannot interact with itself")
        S = self._protocol.num_states
        compiled = self._protocol.compiled
        p = int(self._states[a])
        q = int(self._states[b])
        packed = int(compiled.delta_flat[p * S + q])
        p2, q2 = divmod(packed, S)
        if p2 == p and q2 == q:
            return False
        self._states[a] = p2
        self._states[b] = q2
        self._counts[p] -= 1
        self._counts[q] -= 1
        self._counts[p2] += 1
        self._counts[q2] += 1
        return True

    def run_script(self, pairs: Sequence[tuple[int, int]]) -> int:
        """Replay a scripted sequence of interactions.

        Returns the number of interactions that changed some state.
        Used by the tests that reproduce the paper's Figure 1 and 2
        walk-throughs step by step.
        """
        effective = 0
        for a, b in pairs:
            if self.interact(a, b):
                effective += 1
        return effective

    def set_state(self, agent: int, state: str | int) -> None:
        """Forcibly set one agent's state (test/scenario setup helper)."""
        if isinstance(state, str):
            state = self._protocol.space.index(state)
        old = int(self._states[agent])
        self._states[agent] = state
        self._counts[old] -= 1
        self._counts[state] += 1

    def copy(self) -> "Population":
        """An independent copy of this population."""
        return Population(self._protocol, self._states)

    def __repr__(self) -> str:
        return f"Population(n={self.n}, protocol={self._protocol.name!r})"
