"""Configurations — global states of a population.

Agents in the population-protocol model are anonymous and the schedulers
studied here are exchangeable, so a global state is fully described by
*how many* agents occupy each local state.  :class:`Configuration` wraps
that count vector, keeps it consistent (non-negative, fixed total ``n``)
and provides the successor computation used by the explicit-state model
checker in :mod:`repro.analysis.reachability`.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from .compiler import InteractionClass
from .errors import ConfigurationError
from .protocol import Protocol

__all__ = ["Configuration"]


class Configuration:
    """An immutable count-vector view of a global population state.

    Parameters
    ----------
    protocol:
        The protocol whose state space indexes the counts.
    counts:
        Per-state agent counts, length ``protocol.num_states``.

    Notes
    -----
    Configurations are hashable and usable as dict keys (the model
    checker relies on this).  The count quotient loses agent identity,
    which is exactly the right granularity: the paper's definitions of
    reachability and global fairness are invariant under permuting
    agents with equal states.
    """

    __slots__ = ("_protocol", "_counts", "_key")

    def __init__(self, protocol: Protocol, counts: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(counts, dtype=np.int64)
        if arr.shape != (protocol.num_states,):
            raise ConfigurationError(
                f"counts vector has shape {arr.shape}, expected ({protocol.num_states},)"
            )
        if (arr < 0).any():
            raise ConfigurationError("counts must be non-negative")
        arr = arr.copy()
        arr.setflags(write=False)
        self._protocol = protocol
        self._counts = arr
        self._key = tuple(int(x) for x in arr)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, protocol: Protocol, n: int) -> "Configuration":
        """The designated initial configuration ``C0`` with ``n`` agents."""
        return cls(protocol, protocol.initial_counts(n))

    @classmethod
    def from_states(cls, protocol: Protocol, states: Sequence[str]) -> "Configuration":
        """Build a configuration from an explicit list of agent states."""
        counts = np.zeros(protocol.num_states, dtype=np.int64)
        for s in states:
            counts[protocol.space.index(s)] += 1
        return cls(protocol, counts)

    @classmethod
    def from_mapping(cls, protocol: Protocol, mapping: Mapping[str, int]) -> "Configuration":
        """Build a configuration from a ``{state_name: count}`` mapping."""
        counts = np.zeros(protocol.num_states, dtype=np.int64)
        for name, c in mapping.items():
            if c < 0:
                raise ConfigurationError(f"negative count for state {name!r}")
            counts[protocol.space.index(name)] = c
        return cls(protocol, counts)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def protocol(self) -> Protocol:
        return self._protocol

    @property
    def counts(self) -> np.ndarray:
        """Read-only per-state counts."""
        return self._counts

    @property
    def n(self) -> int:
        """Population size."""
        return int(self._counts.sum())

    @property
    def key(self) -> tuple[int, ...]:
        """Hashable canonical form of the counts."""
        return self._key

    def count_of(self, state: str) -> int:
        """Number of agents in ``state``."""
        return int(self._counts[self._protocol.space.index(state)])

    def as_dict(self, *, skip_zero: bool = True) -> dict[str, int]:
        """Counts as ``{state_name: count}`` (zero entries omitted)."""
        names = self._protocol.space.names
        return {
            name: int(c)
            for name, c in zip(names, self._counts)
            if c or not skip_zero
        }

    def group_sizes(self) -> np.ndarray:
        """Per-group agent totals under the protocol's group map."""
        return self._protocol.group_sizes(self._counts)

    # ------------------------------------------------------------------
    # Transition semantics
    # ------------------------------------------------------------------
    def enabled_classes(self) -> list[tuple[int, InteractionClass]]:
        """Active interaction classes with non-zero weight here."""
        compiled = self._protocol.compiled
        out = []
        for idx, cls in enumerate(compiled.classes):
            if cls.weight(self._counts) > 0:
                out.append((idx, cls))
        return out

    def apply_class(self, cls: InteractionClass) -> "Configuration":
        """The configuration after one interaction of class ``cls``."""
        if cls.weight(self._counts) <= 0:
            raise ConfigurationError(f"interaction class {cls} is not enabled")
        counts = self._counts.copy()
        counts[cls.in1] -= 1
        counts[cls.in2] -= 1
        counts[cls.out1] += 1
        counts[cls.out2] += 1
        return Configuration(self._protocol, counts)

    def successors(self) -> Iterator["Configuration"]:
        """Distinct configurations ``C'`` with ``C -> C'`` via a state change.

        Null interactions (which keep the configuration identical) are
        not yielded; they are irrelevant to reachability and stability.
        Different interaction classes producing the same successor (e.g.
        rule-4 flips against different g-states) are deduplicated.
        """
        seen: set[tuple[int, ...]] = set()
        for _, cls in self.enabled_classes():
            succ = self.apply_class(cls)
            if succ.key not in seen:
                seen.add(succ.key)
                yield succ

    def is_silent(self) -> bool:
        """True when no possible interaction changes any state."""
        return self._protocol.compiled.is_silent(self._counts)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._protocol is other._protocol and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}: {c}" for name, c in self.as_dict().items())
        return f"Configuration({{{parts}}})"
