"""Executions — recorded interaction sequences.

An execution in the paper is an infinite configuration sequence
``C0, C1, ...`` with ``Ci -> Ci+1``.  For analysis we record *finite
prefixes* as a sequence of :class:`Step` events: which agents met, what
rule (if any) fired, and optional configuration snapshots.

This module is deliberately simple; fast simulation does not use it.
It exists for the scripted paper walk-throughs (Figures 1 and 2), for
fairness diagnostics, and for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

from .configuration import Configuration
from .population import Population

__all__ = ["Step", "ExecutionTrace", "record_script"]


@dataclass(frozen=True, slots=True)
class Step:
    """One interaction in a recorded execution."""

    index: int
    initiator: int
    responder: int
    before: tuple[str, str]
    after: tuple[str, str]

    @property
    def effective(self) -> bool:
        """True when the interaction changed at least one state."""
        return self.before != self.after


@dataclass(slots=True)
class ExecutionTrace:
    """A finite execution prefix with optional configuration snapshots."""

    steps: list[Step] = field(default_factory=list)
    configurations: list[Configuration] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    @property
    def num_effective(self) -> int:
        return sum(1 for s in self.steps if s.effective)

    def pairs(self) -> list[tuple[int, int]]:
        """The interaction pairs in order (initiator, responder)."""
        return [(s.initiator, s.responder) for s in self.steps]

    def final_configuration(self) -> Configuration | None:
        return self.configurations[-1] if self.configurations else None


def record_script(
    population: Population,
    pairs: Sequence[tuple[int, int]],
    *,
    snapshots: bool = True,
) -> ExecutionTrace:
    """Run a scripted interaction sequence, recording every step.

    Mutates ``population`` in place and returns the trace.  With
    ``snapshots=True`` the configuration after every step is stored
    (plus the starting configuration at index 0), which is what the
    Figure 1/2 reproduction tests assert against.
    """
    trace = ExecutionTrace()
    if snapshots:
        trace.configurations.append(population.configuration())
    for i, (a, b) in enumerate(pairs):
        before = (population.state_of(a), population.state_of(b))
        population.interact(a, b)
        after = (population.state_of(a), population.state_of(b))
        trace.steps.append(Step(i, a, b, before, after))
        if snapshots:
            trace.configurations.append(population.configuration())
    return trace
