"""Core population-protocol model: states, transitions, protocols,
configurations, populations, executions, and the protocol compiler."""

from .compiler import CompiledProtocol, InteractionClass, compile_protocol
from .configuration import Configuration
from .errors import (
    AsymmetricTransitionError,
    CampaignError,
    ConfigurationError,
    ConvergenceError,
    ExperimentError,
    NonDeterministicProtocolError,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
    UnknownEngineError,
    UnknownProtocolError,
    UnknownStateError,
)
from .execution import ExecutionTrace, Step, record_script
from .population import Population
from .protocol import Protocol
from .rng import SeedLike, ensure_generator, spawn_generators, spawn_seed_sequences
from .state import StateSpace
from .transitions import Transition, TransitionTable

__all__ = [
    "CompiledProtocol",
    "InteractionClass",
    "compile_protocol",
    "Configuration",
    "Population",
    "Protocol",
    "StateSpace",
    "Transition",
    "TransitionTable",
    "ExecutionTrace",
    "Step",
    "record_script",
    "SeedLike",
    "ensure_generator",
    "spawn_generators",
    "spawn_seed_sequences",
    "ReproError",
    "ProtocolError",
    "NonDeterministicProtocolError",
    "AsymmetricTransitionError",
    "UnknownStateError",
    "ConfigurationError",
    "SimulationError",
    "ConvergenceError",
    "SchedulerError",
    "ExperimentError",
    "UnknownEngineError",
    "UnknownProtocolError",
    "CampaignError",
]
