"""Compilation of a :class:`~repro.core.protocol.Protocol` to flat tables.

Simulation speed is dominated by the per-interaction inner loop, so all
engines work on a :class:`CompiledProtocol`: dense integer lookup tables
plus a list of *interaction classes* for the count-based engine.

Interaction classes are defined over **ordered** agent pairs: the
uniform scheduler picks an ordered pair of distinct agents uniformly
among ``T = n(n-1)``, so with per-state counts ``c`` the number of
ordered pairs realizing inputs ``(p, q)`` is

* ``c[p] * c[q]``        when ``p != q``
* ``c[p] * (c[p] - 1)``  when ``p == q``.

For the common case of *mirror-consistent* rules (the rule on ``(q, p)``
is exactly the mirror of the rule on ``(p, q)``, which is how symmetric
papers list their transitions) both orientations produce the same count
update, so the compiler merges them into one class with a weight
multiplier of 2.  Rules whose two orientations differ (legitimately
*oriented* protocols, e.g. initiator-wins majority or products of an
asymmetric with a symmetric protocol) stay as separate classes — the
count engine then samples the orientation implicitly through the class
weights, exactly matching agent-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .protocol import Protocol

__all__ = ["InteractionClass", "CompiledProtocol", "compile_protocol"]


@dataclass(frozen=True, slots=True)
class InteractionClass:
    """One active input pair with its rule outputs (state indices).

    ``weight`` counts the ordered agent pairs this class captures:
    ``multiplier * c[in1] * c[in2]`` for distinct inputs (multiplier 2
    when the class folds both mirror-consistent orientations, else 1),
    and ``c[in1] * (c[in1] - 1)`` for same-state inputs.
    """

    in1: int
    in2: int
    out1: int
    out2: int
    #: True when both inputs are the same state.
    same: bool
    #: Ordered-orientation multiplicity (1 or 2); 1 for same-state.
    multiplier: int = 2

    def weight(self, counts: np.ndarray) -> int:
        """Number of ordered agent pairs realizing this class."""
        if self.same:
            c = int(counts[self.in1])
            return c * (c - 1)
        return self.multiplier * int(counts[self.in1]) * int(counts[self.in2])


@dataclass(slots=True)
class CompiledProtocol:
    """Flat lookup tables for a protocol, shared by all engines.

    Attributes
    ----------
    num_states:
        ``S = |Q|``.
    delta_flat:
        ``int32`` array of length ``S*S``; entry ``p*S + q`` packs the
        ordered outputs as ``p2*S + q2``.  Null pairs map to themselves.
    active_flat:
        ``bool`` array of length ``S*S``; True where the ordered pair has
        a state-changing rule.
    group_array:
        ``g[i] = f(state_i)`` (1-based groups; 0 where unmapped).
    classes:
        Active interaction classes for the count-based engine.
    state_classes:
        ``state_classes[s]`` lists the indices of classes whose input
        pair involves state ``s`` — used for incremental weight updates.
    """

    num_states: int
    delta_flat: np.ndarray
    active_flat: np.ndarray
    group_array: np.ndarray
    classes: list[InteractionClass]
    state_classes: list[list[int]]
    _delta_list: list[int] | None = field(default=None, repr=False)

    @property
    def delta_list(self) -> list[int]:
        """``delta_flat`` as a Python list (faster scalar indexing)."""
        if self._delta_list is None:
            self._delta_list = self.delta_flat.tolist()
        return self._delta_list

    def class_weights(self, counts: np.ndarray) -> list[int]:
        """Weights of all classes for a given count vector."""
        return [cls.weight(counts) for cls in self.classes]

    def total_active_weight(self, counts: np.ndarray) -> int:
        """Ordered agent pairs whose interaction changes some state."""
        return sum(self.class_weights(counts))

    def is_silent(self, counts: np.ndarray) -> bool:
        """True when no possible interaction changes any state."""
        return self.total_active_weight(counts) == 0


def compile_protocol(protocol: "Protocol") -> CompiledProtocol:
    """Build the flat tables for ``protocol``."""
    space = protocol.space
    table = protocol.transitions
    S = len(space)

    delta_flat = np.arange(S * S, dtype=np.int32)
    active_flat = np.zeros(S * S, dtype=bool)

    for t in table:
        p = space.index(t.p)
        q = space.index(t.q)
        p2 = space.index(t.p2)
        q2 = space.index(t.q2)
        delta_flat[p * S + q] = p2 * S + q2
        if (p, q) != (p2, q2):
            active_flat[p * S + q] = True

    classes: list[InteractionClass] = []
    handled: set[tuple[int, int]] = set()
    for t in table:
        p = space.index(t.p)
        q = space.index(t.q)
        if (p, q) in handled:
            continue
        handled.add((p, q))
        if p == q:
            if t.is_identity:
                continue
            classes.append(
                InteractionClass(
                    p, p,
                    space.index(t.p2), space.index(t.q2),
                    same=True, multiplier=1,
                )
            )
            continue
        reverse = table.lookup(t.q, t.p)
        if reverse is not None and reverse == t.mirror:
            # Mirror-consistent: one class covers both orientations.
            handled.add((q, p))
            if t.is_identity:
                continue
            classes.append(
                InteractionClass(
                    p, q,
                    space.index(t.p2), space.index(t.q2),
                    same=False, multiplier=2,
                )
            )
        else:
            # Oriented rule: this orientation only (the reverse, if it
            # exists and differs, gets its own class on its own pass).
            if t.is_identity:
                continue
            classes.append(
                InteractionClass(
                    p, q,
                    space.index(t.p2), space.index(t.q2),
                    same=False, multiplier=1,
                )
            )

    state_classes: list[list[int]] = [[] for _ in range(S)]
    for idx, cls in enumerate(classes):
        state_classes[cls.in1].append(idx)
        if cls.in2 != cls.in1:
            state_classes[cls.in2].append(idx)

    return CompiledProtocol(
        num_states=S,
        delta_flat=delta_flat,
        active_flat=active_flat,
        group_array=space.group_array,
        classes=classes,
        state_classes=state_classes,
    )
