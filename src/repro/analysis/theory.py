"""Closed-form facts from the paper, centralized and test-checked.

The paper's space-complexity claims are stated in prose; this module
materializes them as functions so the state-complexity table
(experiment ``state_table``) can cross-check each formula against the
number of states the *actual implementation* constructs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "proposed_state_count",
    "approx_state_count",
    "lower_bound_state_count",
    "repeated_bipartition_state_count",
    "StateComplexityRow",
    "state_complexity_row",
]


def proposed_state_count(k: int) -> int:
    """States used by Algorithm 1: ``3k - 2`` (Theorem 1)."""
    _require_k(k)
    return 3 * k - 2


def approx_state_count(k: int) -> int:
    """States of the approximate baseline [14]: ``k(k+3)/2``."""
    _require_k(k)
    return k * (k + 3) // 2


def lower_bound_state_count(k: int) -> int:
    """Trivial lower bound: ``k`` states are needed to name k groups.

    The paper phrases it as Omega(k): any protocol must map states onto
    k distinct group values, so ``|Q| >= k``.  This makes 3k - 2
    asymptotically optimal.
    """
    _require_k(k)
    return k


def repeated_bipartition_state_count(k: int) -> int:
    """Reachable states of h-fold repeated bipartition, ``k = 2^h``.

    Each undecided agent is a decided binary prefix plus one of two
    free flavours; decided agents are leaves:
    ``sum_{j<h} 2^j * 2 + 2^h = 3 * 2^h - 2 = 3k - 2``.
    Defined only for powers of two.
    """
    _require_k(k)
    h = k.bit_length() - 1
    if 2**h != k:
        raise ValueError(f"repeated bipartition needs k to be a power of two, got {k}")
    return 3 * k - 2


@dataclass(frozen=True, slots=True)
class StateComplexityRow:
    """One row of the state-complexity comparison table."""

    k: int
    lower_bound: int
    proposed: int
    approx_baseline: int
    repeated_bipartition: int | None

    @property
    def proposed_over_lower(self) -> float:
        """Ratio showing the constant of asymptotic optimality (-> 3)."""
        return self.proposed / self.lower_bound


def state_complexity_row(k: int) -> StateComplexityRow:
    """Build one comparison-table row for a given k."""
    is_pow2 = k >= 2 and (k & (k - 1)) == 0
    return StateComplexityRow(
        k=k,
        lower_bound=lower_bound_state_count(k),
        proposed=proposed_state_count(k),
        approx_baseline=approx_state_count(k),
        repeated_bipartition=repeated_bipartition_state_count(k) if is_pow2 else None,
    )


def _require_k(k: int) -> None:
    if not isinstance(k, int) or k < 2:
        raise ValueError(f"k must be an integer >= 2, got {k!r}")
