"""Explicit-state model checking of protocol correctness.

Global fairness has a crisp finite-state consequence: an infinite
globally fair execution visits some configuration infinitely often, and
from any such configuration every *reachable* configuration is also
visited infinitely often.  Hence a protocol with designated initial
states solves a stabilization problem under global fairness **iff** on
the (finite) reachable configuration graph:

1.  from every reachable configuration a *stable* configuration is
    reachable, and
2.  stable configurations satisfy the problem's output condition and
    never leave the stable set.

This module builds the reachable configuration graph in the count
quotient (agents are anonymous; the quotient is sound and complete for
these properties) and checks exactly that, giving machine-checked
correctness certificates for small ``(n, k)`` — the strongest evidence
short of re-proving Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import networkx as nx

from ..core.configuration import Configuration
from ..core.errors import SimulationError
from .stability import groups_frozen_under_transitions, is_uniform_partition

__all__ = ["ReachabilityReport", "explore", "verify_stabilization", "verify_kpartition"]


@dataclass(slots=True)
class ReachabilityReport:
    """Result of exhaustively checking one initial configuration."""

    protocol: str
    n: int
    #: Number of reachable configurations (count quotient).
    reachable: int
    #: Number of reachable stable configurations.
    stable: int
    #: True when every reachable configuration can reach a stable one.
    always_recoverable: bool
    #: True when the stable set is closed (no escape) and every stable
    #: configuration satisfies the output condition.
    stable_set_valid: bool
    #: Configurations from which no stable configuration is reachable
    #: (empty when the protocol is correct).
    counterexamples: list[dict[str, int]]

    @property
    def correct(self) -> bool:
        """The protocol solves the problem under global fairness."""
        return self.always_recoverable and self.stable_set_valid and self.stable > 0


def explore(
    initial: Configuration,
    *,
    max_configs: int = 500_000,
) -> nx.DiGraph:
    """Build the reachable configuration graph from ``initial``.

    Nodes are configuration keys (count tuples); each node stores its
    :class:`Configuration` under the ``"config"`` attribute.  Edges are
    state-changing transitions (null self-loops are irrelevant to both
    reachability and stability and are omitted).
    """
    graph = nx.DiGraph()
    graph.add_node(initial.key, config=initial)
    frontier = [initial]
    while frontier:
        current = frontier.pop()
        for succ in current.successors():
            if succ.key not in graph:
                if graph.number_of_nodes() >= max_configs:
                    raise MemoryError(
                        f"reachable set exceeded {max_configs} configurations"
                    )
                graph.add_node(succ.key, config=succ)
                frontier.append(succ)
            graph.add_edge(current.key, succ.key)
    return graph


def verify_stabilization(
    initial: Configuration,
    is_stable: Callable[[Configuration], bool],
    output_ok: Callable[[Configuration], bool],
    *,
    max_configs: int = 500_000,
) -> ReachabilityReport:
    """Model-check a stabilization property under global fairness.

    Parameters
    ----------
    initial:
        The designated initial configuration.
    is_stable:
        Identifies stable configurations (e.g. the closed-form
        signature).  Closure of the stable set is verified, not
        assumed.
    output_ok:
        The output condition stable configurations must satisfy.
    """
    graph = explore(initial, max_configs=max_configs)
    stable_keys = {
        key for key, data in graph.nodes(data=True) if is_stable(data["config"])
    }

    # (2) stable set validity: output condition + closure + group freeze.
    stable_set_valid = True
    for key in stable_keys:
        config = graph.nodes[key]["config"]
        if not output_ok(config):
            stable_set_valid = False
            break
        if not groups_frozen_under_transitions(config):
            stable_set_valid = False
            break
        if any(succ not in stable_keys for succ in graph.successors(key)):
            stable_set_valid = False
            break

    # (1) every configuration can reach a stable one: walk the reverse
    # graph from the stable set.
    reverse = graph.reverse(copy=False)
    recoverable: set = set()
    for key in stable_keys:
        if key not in recoverable:
            recoverable.add(key)
            recoverable.update(nx.descendants(reverse, key))
    counterexample_keys = [k for k in graph.nodes if k not in recoverable]

    return ReachabilityReport(
        protocol=initial.protocol.name,
        n=initial.n,
        reachable=graph.number_of_nodes(),
        stable=len(stable_keys),
        always_recoverable=not counterexample_keys,
        stable_set_valid=stable_set_valid,
        counterexamples=[
            graph.nodes[k]["config"].as_dict() for k in counterexample_keys[:10]
        ],
    )


def verify_kpartition(protocol, n: int, *, max_configs: int = 500_000) -> ReachabilityReport:
    """Model-check Theorem 1 for one ``(n, k)`` instance.

    Verifies that from every reachable configuration the Lemma-6
    signature is reachable, that the signature is closed under
    transitions with frozen groups, and that its partition is uniform.
    """
    if n < 3:
        raise SimulationError(
            "the paper assumes n >= 3 (two agents cannot break symmetry)"
        )
    initial = Configuration.initial(protocol, n)
    pred = protocol.stability_predicate(n)
    if pred is None:
        raise SimulationError("protocol lacks a stability predicate")

    return verify_stabilization(
        initial,
        is_stable=lambda c: pred(c.counts),
        output_ok=lambda c: is_uniform_partition(c.group_sizes()),
        max_configs=max_configs,
    )
