"""Runtime checking of the paper's Lemma 1 invariant.

Lemma 1: for every configuration reachable from the designated initial
configuration,

    #g_x  =  sum_{p > x} #m_p  +  sum_{q >= x} #d_q  +  #g_k

holds for every ``x`` in ``1..k``.  The lemma is the backbone of the
correctness proof (it is what guarantees that a completed group never
starves another), so the test suite re-verifies it *dynamically*: an
:class:`InvariantMonitor` plugs into an engine's ``on_effective`` hook
and checks the residuals after every effective interaction.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..core.errors import SimulationError
from ..protocols.kpartition import UniformKPartitionProtocol

__all__ = ["InvariantViolation", "InvariantMonitor", "lemma1_holds_along"]


class InvariantViolation(SimulationError):
    """Raised when a monitored invariant fails during an execution."""

    def __init__(self, message: str, interactions: int, counts: list[int]) -> None:
        super().__init__(message)
        self.interactions = interactions
        self.counts = counts


class InvariantMonitor:
    """``on_effective`` callback that asserts an invariant every step.

    Parameters
    ----------
    check:
        ``check(counts) -> bool``; False triggers
        :class:`InvariantViolation`.
    description:
        Used in the violation message.
    every:
        Check every ``every``-th effective interaction (1 = all).  The
        terminal configuration is always checked regardless: engines
        invoke the :meth:`finalize` hook after their loop, and a
        violation in the configuration an execution *ends* in must
        never slip through the sampling stride.
    """

    def __init__(
        self,
        check: Callable[[Sequence[int]], bool],
        description: str = "invariant",
        *,
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError(f"'every' must be positive, got {every}")
        self._check = check
        self._description = description
        self._every = every
        self._calls = 0
        #: Number of times the invariant was actually evaluated.
        self.checks_performed = 0

    def __call__(self, interactions: int, counts: Sequence[int]) -> None:
        self._calls += 1
        if self._calls % self._every:
            return
        self._evaluate(interactions, counts)

    def finalize(self, interactions: int, counts: Sequence[int]) -> None:
        """Engine end-of-run hook: always evaluate on the final configuration.

        With ``every > 1`` the stride can land just past the last
        effective interaction, silently skipping the terminal
        configuration; this hook closes that gap.  Skipped only when
        the last ``__call__`` already checked this very configuration.
        """
        if self.checks_performed and self._calls % self._every == 0:
            return
        self._evaluate(interactions, counts)

    def _evaluate(self, interactions: int, counts: Sequence[int]) -> None:
        self.checks_performed += 1
        if not self._check(counts):
            raise InvariantViolation(
                f"{self._description} violated after {interactions} interactions",
                interactions,
                list(counts),
            )

    @classmethod
    def lemma1(
        cls, protocol: UniformKPartitionProtocol, *, every: int = 1
    ) -> "InvariantMonitor":
        """Monitor for the paper's Lemma 1 on a k-partition protocol."""
        return cls(
            lambda counts: protocol.satisfies_lemma1(np.asarray(counts, dtype=np.int64)),
            description=f"Lemma 1 invariant of {protocol.name}",
            every=every,
        )


def lemma1_holds_along(
    protocol: UniformKPartitionProtocol,
    configurations: Sequence[Sequence[int]],
) -> bool:
    """Check Lemma 1 on an explicit sequence of count vectors."""
    return all(
        protocol.satisfies_lemma1(np.asarray(c, dtype=np.int64)) for c in configurations
    )
