"""Exhaustive protocol search: mechanizing the space lower bound.

The paper's asymptotic optimality argument rests on prior work: Yasumi
et al. [25] proved that **four states are necessary and sufficient**
for symmetric uniform bipartition with designated initial states under
global fairness.  This module *mechanizes the necessity direction*: it
enumerates every deterministic symmetric protocol with a given number
of states (and every surjective group map), model-checks each candidate
on a family of population sizes, and reports the survivors.

For three states the search space is exhaustive and finite:

* same-state pairs ``(s, s)``: the output must be ``(a, a)``
  (symmetry) — ``num_states`` choices including null;
* mixed pairs ``(s, t)``: any ordered output or null
  (``num_states^2`` choices); the mirror rule is implied.

A protocol "survives" if it solves uniform k-partition for **every**
tested ``n`` (a protocol correct for all n must in particular be
correct for the tested ones, so zero survivors proves the lower bound
for the tested family — and since correctness must hold for all n, for
the class of correct protocols altogether).

``search_lower_bound(num_states=3, k=2, ns=(3, 4, 5, 6))`` reproduces
the [25] necessity result in seconds of pure Python (118,098 candidates,
zero survivors — n up to 6 is needed: eight degenerate candidates can
balance n <= 5 but none survives n = 6); the test suite runs a
reduced version and the positive control (the shipped 4-state
bipartition protocol passes the same checker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from collections.abc import Callable, Iterator, Sequence

__all__ = [
    "RuleTable",
    "enumerate_symmetric_rule_tables",
    "enumerate_rule_tables",
    "enumerate_group_maps",
    "solves_uniform_partition",
    "SearchResult",
    "search_lower_bound",
    "rule_table_to_protocol",
]

#: Canonical rule table: maps state-index pair ``(i, j)`` with ``i <= j``
#: to an ordered output pair ``(a, b)`` (agent in i -> a, agent in j -> b).
#: Missing pairs are null.  Mirrors are implied (symmetric protocols).
RuleTable = dict[tuple[int, int], tuple[int, int]]


def enumerate_symmetric_rule_tables(num_states: int) -> Iterator[RuleTable]:
    """Yield every deterministic symmetric rule table on ``num_states``.

    Identity outputs are canonicalized to "no rule", so each distinct
    behaviour is produced exactly once.
    """
    return enumerate_rule_tables(num_states, symmetric=True)


def enumerate_rule_tables(num_states: int, *, symmetric: bool) -> Iterator[RuleTable]:
    """Yield every deterministic rule table on ``num_states`` states.

    With ``symmetric=False`` the same-state pairs may break symmetry:
    ``(s, s) -> (a, b)`` with ``a != b`` (canonicalized to ``a <= b`` —
    which agent takes which output is immaterial in the count quotient).
    Mixed-pair rules remain orientation-independent (the outcome depends
    on the two states, not on who initiates), which covers the protocol
    class of the paper and of [25].
    """
    if num_states < 1:
        raise ValueError(f"num_states must be positive, got {num_states}")
    pairs: list[tuple[int, int]] = [
        (i, j) for i in range(num_states) for j in range(i, num_states)
    ]
    options: list[list[tuple[int, int] | None]] = []
    for i, j in pairs:
        if i == j:
            opts: list[tuple[int, int] | None] = [None]
            if symmetric:
                # Symmetry: (s, s) -> (a, a); a == s is the null rule.
                opts += [(a, a) for a in range(num_states) if a != i]
            else:
                # Any output multiset {a, b} except the identity {i, i}.
                opts += [
                    (a, b)
                    for a in range(num_states)
                    for b in range(a, num_states)
                    if (a, b) != (i, i)
                ]
        else:
            opts = [None]
            opts += [
                (a, b)
                for a in range(num_states)
                for b in range(num_states)
                if (a, b) != (i, j)
            ]
        options.append(opts)
    for combo in product(*options):
        yield {
            pair: out for pair, out in zip(pairs, combo) if out is not None
        }


def enumerate_group_maps(num_states: int, k: int) -> Iterator[tuple[int, ...]]:
    """Yield every surjective map from states to groups ``0..k-1``."""
    for combo in product(range(k), repeat=num_states):
        if len(set(combo)) == k:
            yield combo


def solves_uniform_partition(
    rules: RuleTable,
    group_of: Sequence[int],
    n: int,
    num_states: int,
    *,
    initial_state: int = 0,
    max_configs: int = 100_000,
) -> bool:
    """Model-check one candidate on one population size.

    Semantics (count quotient, matching Section 2.2): the protocol
    solves uniform k-partition for ``n`` iff from every reachable
    configuration one can reach a configuration that (a) is balanced
    (group sizes within 1) and (b) only reaches configurations whose
    enabled transitions preserve both participants' groups (so each
    agent's group is frozen and balance persists).
    """
    k = max(group_of) + 1

    def successors(config: tuple[int, ...]) -> list[tuple[int, ...]]:
        out = []
        for (i, j), (a, b) in rules.items():
            if i == j:
                if config[i] < 2:
                    continue
            elif config[i] < 1 or config[j] < 1:
                continue
            nxt = list(config)
            nxt[i] -= 1
            nxt[j] -= 1
            nxt[a] += 1
            nxt[b] += 1
            out.append(tuple(nxt))
        return out

    def balanced(config: tuple[int, ...]) -> bool:
        sizes = [0] * k
        for s, c in enumerate(config):
            sizes[group_of[s]] += c
        return max(sizes) - min(sizes) <= 1

    def breaks_groups(config: tuple[int, ...]) -> bool:
        for (i, j), (a, b) in rules.items():
            if i == j:
                if config[i] < 2:
                    continue
            elif config[i] < 1 or config[j] < 1:
                continue
            if group_of[i] != group_of[a] or group_of[j] != group_of[b]:
                return True
        return False

    # Forward exploration.
    init = tuple(n if s == initial_state else 0 for s in range(num_states))
    succ_of: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
    stack = [init]
    succ_of[init] = successors(init)
    while stack:
        cur = stack.pop()
        for nxt in succ_of[cur]:
            if nxt not in succ_of:
                if len(succ_of) >= max_configs:
                    raise MemoryError("candidate search exceeded max_configs")
                succ_of[nxt] = successors(nxt)
                stack.append(nxt)

    # Backward closure of group-breaking configurations ("tainted").
    preds: dict[tuple[int, ...], list[tuple[int, ...]]] = {c: [] for c in succ_of}
    for c, succs in succ_of.items():
        for s in succs:
            preds[s].append(c)
    tainted = {c for c in succ_of if breaks_groups(c)}
    stack = list(tainted)
    while stack:
        cur = stack.pop()
        for p in preds[cur]:
            if p not in tainted:
                tainted.add(p)
                stack.append(p)

    good_stable = {c for c in succ_of if c not in tainted and balanced(c)}
    if not good_stable:
        return False

    # Every reachable configuration must be able to reach good_stable.
    recoverable = set(good_stable)
    stack = list(good_stable)
    while stack:
        cur = stack.pop()
        for p in preds[cur]:
            if p not in recoverable:
                recoverable.add(p)
                stack.append(p)
    return len(recoverable) == len(succ_of)


@dataclass(slots=True)
class SearchResult:
    """Outcome of an exhaustive lower-bound search."""

    num_states: int
    k: int
    ns: tuple[int, ...]
    #: Number of (rule table, group map) candidates examined.
    candidates: int
    #: Candidates pruned before model checking (dead initial state).
    pruned: int
    #: Surviving candidates: (rules, group map) that solved every n.
    survivors: list[tuple[RuleTable, tuple[int, ...]]] = field(default_factory=list)
    #: Whether the search was restricted to symmetric protocols.
    symmetric: bool = True

    @property
    def lower_bound_holds(self) -> bool:
        """True when no candidate protocol survives every tested n."""
        return not self.survivors


def search_lower_bound(
    num_states: int = 3,
    k: int = 2,
    ns: Sequence[int] = (3, 4, 5, 6),
    *,
    symmetric: bool = True,
    progress: Callable[[str], None] | None = None,
    progress_every: int = 5000,
) -> SearchResult:
    """Exhaustively search for a ``num_states``-state protocol.

    Returns the survivors (empty == the lower bound holds for this
    state count).  The search is exact over the full candidate space:
    every deterministic rule table (symmetric by default; pass
    ``symmetric=False`` to also allow symmetry-breaking same-state
    rules) times every surjective group map, model-checked on every
    ``n`` in ``ns`` (ascending, with early rejection).
    """
    ns = tuple(sorted(ns))
    if min(ns) < 3:
        raise ValueError("the paper's model assumes n >= 3")
    group_maps = list(enumerate_group_maps(num_states, k))
    result = SearchResult(
        num_states=num_states, k=k, ns=ns, candidates=0, pruned=0,
        symmetric=symmetric,
    )
    examined = 0
    for rules in enumerate_rule_tables(num_states, symmetric=symmetric):
        # Prune: with designated initial state 0 and n >= 2 agents, the
        # only transition available initially is (0, 0); without it the
        # population is frozen in one group forever.
        dead_start = (0, 0) not in rules
        for group_of in group_maps:
            result.candidates += 1
            examined += 1
            if progress is not None and examined % progress_every == 0:
                progress(
                    f"search S={num_states}: {examined} candidates, "
                    f"{len(result.survivors)} survivors"
                )
            if dead_start:
                result.pruned += 1
                continue
            ok = True
            for n in ns:
                if not solves_uniform_partition(
                    rules, group_of, n, num_states
                ):
                    ok = False
                    break
            if ok:
                result.survivors.append((dict(rules), group_of))
    return result


def rule_table_to_protocol(
    rules: RuleTable,
    group_of: Sequence[int],
    *,
    name: str = "searched-protocol",
    initial_state: int = 0,
):
    """Lift a search-encoding candidate into a full :class:`Protocol`.

    Discovered protocols become first-class citizens: they can be
    simulated by every engine, described, serialized, and re-verified
    by the heavyweight model checker.  States are named ``q0, q1, ...``;
    groups are renumbered 1-based to match the library convention.
    """
    from ..core.protocol import Protocol
    from ..core.state import StateSpace
    from ..core.transitions import TransitionTable

    num_states = len(group_of)
    names = [f"q{i}" for i in range(num_states)]
    space = StateSpace(
        names,
        groups={names[i]: group_of[i] + 1 for i in range(num_states)},
        num_groups=max(group_of) + 1,
    )
    table = TransitionTable(space)
    for (i, j), (a, b) in rules.items():
        table.add(names[i], names[j], names[a], names[b])
    return Protocol(
        name,
        space,
        table,
        names[initial_state],
        metadata={"origin": "analysis.search", "rules": len(rules)},
    )
