"""Grouping decomposition — the analysis behind the paper's Figure 4.

The paper instruments executions by *groupings*: the i-th grouping is
complete when the i-th agent enters state ``g_k`` (after which that
set of agents in ``g_1..g_k`` can never be torn down again).  With

    NI_i  = interactions until the i-th grouping completes
    NI'_i = NI_i - NI_{i-1}

Figure 4 stacks the mean ``NI'_i`` and observes ``NI'_1 < NI'_2 < ...``
(later groupings fight a shrinking pool of free agents) and that for
``n = c*k + k`` and ``c*k + (k+1)`` the final grouping accounts for
more than half of all interactions.

Engines collect ``NI_i`` via ``track_state=g_k``; this module turns the
per-trial milestone lists into the aggregated decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.runner import TrialSet

__all__ = ["GroupingDecomposition", "decompose_groupings"]


@dataclass(slots=True)
class GroupingDecomposition:
    """Aggregated per-grouping interaction costs for one (n, k) point."""

    n: int
    k: int
    trials: int
    #: mean NI'_i for i = 1..floor(n/k); shape (floor(n/k),).
    mean_increments: np.ndarray
    #: mean interactions spent after the last grouping (the leftover
    #: r = n mod k agents settling into g_1..g_{r-1}, m_r).
    mean_tail: float
    #: mean total interactions to stability.
    mean_total: float

    @property
    def num_groupings(self) -> int:
        return int(self.mean_increments.size)

    @property
    def increments_are_increasing(self) -> bool:
        """The paper's NI'_1 < NI'_2 < ... observation (non-strict),
        checked from the second grouping onward.

        The first grouping additionally pays the symmetry-breaking
        warm-up (all n agents start in the designated initial state and
        must toggle before rule 5 can fire), which at small n can make
        NI'_1 slightly exceed NI'_2.  From NI'_2 on, the shrinking pool
        of free agents makes the increments increase, as the paper
        explains.  EXPERIMENTS.md discusses this reproduction nuance.
        """
        inc = self.mean_increments
        return bool((np.diff(inc[1:]) >= 0).all()) if inc.size > 2 else True

    @property
    def warmup_excess(self) -> float:
        """``NI'_1 - NI'_2``: the symmetry-breaking warm-up surplus."""
        inc = self.mean_increments
        if inc.size < 2:
            return 0.0
        return float(inc[0] - inc[1])

    @property
    def last_grouping_share(self) -> float:
        """Fraction of all interactions spent on the final grouping."""
        if self.mean_total <= 0 or self.mean_increments.size == 0:
            return 0.0
        return float(self.mean_increments[-1] / self.mean_total)

    def stacked_rows(self) -> list[tuple[str, float]]:
        """(label, mean) rows for the Figure 4 stacked rendering."""
        rows = [
            (f"{_ordinal(i + 1)}-grouping", float(v))
            for i, v in enumerate(self.mean_increments)
        ]
        if self.mean_tail > 0:
            rows.append(("remainder", self.mean_tail))
        return rows


def _ordinal(i: int) -> str:
    if 10 <= i % 100 <= 20:
        suffix = "th"
    else:
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(i % 10, "th")
    return f"{i}{suffix}"


def decompose_groupings(trial_set: TrialSet, k: int) -> GroupingDecomposition:
    """Aggregate a tracked trial set into the Figure 4 decomposition.

    The trial set must have been run with ``track_state = g_k``; every
    trial then carries exactly ``floor(n/k)`` milestones.
    """
    n = trial_set.n
    expected = n // k
    milestone_lists = trial_set.milestone_lists()
    for i, m in enumerate(milestone_lists):
        if len(m) != expected:
            raise ValueError(
                f"trial {i} recorded {len(m)} g_k milestones, expected {expected}; "
                "was the trial set run with track_state=g_k?"
            )
    totals = trial_set.interactions.astype(np.float64)
    if expected == 0:
        return GroupingDecomposition(
            n=n,
            k=k,
            trials=trial_set.trials,
            mean_increments=np.zeros(0),
            mean_tail=float(totals.mean()),
            mean_total=float(totals.mean()),
        )
    ni = np.asarray(milestone_lists, dtype=np.float64)  # trials x groupings
    increments = np.diff(np.concatenate([np.zeros((ni.shape[0], 1)), ni], axis=1), axis=1)
    tails = totals - ni[:, -1]
    return GroupingDecomposition(
        n=n,
        k=k,
        trials=trial_set.trials,
        mean_increments=increments.mean(axis=0),
        mean_tail=float(tails.mean()),
        mean_total=float(totals.mean()),
    )
