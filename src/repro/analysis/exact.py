"""Exact expected stabilization times by first-step analysis.

The paper measures time complexity by simulation and leaves its exact
characterization as an open question ("What is the time complexity of
the uniform k-partition problem under probabilistic fairness?").  For
small instances we can answer *exactly*: under the uniform scheduler
the configuration process is a finite Markov chain on count vectors,
and the expected number of interactions to reach a stable
configuration solves a linear system.

From a non-stable configuration ``C`` with ``T = n(n-1)`` ordered
pairs and active weight ``W(C)`` (ordered-pair class weights):

* the next *effective* interaction arrives after a geometric number of
  interactions with mean ``T / W(C)``, and
* it applies class ``r`` with probability ``w_r(C) / W(C)``.

Hence the expected interactions-to-stability ``E[C]`` satisfies::

    E[C] = T / W(C) + sum_r  (w_r(C) / W(C)) * E[C_r]     (C not stable)
    E[C] = 0                                              (C stable)

This module builds the reachable configuration graph, assembles the
sparse system, and solves it.  The result validates the simulation
engines *quantitatively*: ``tests/analysis/test_exact.py`` checks that
the trial means of all three engines match these closed-form values
within statistical error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

from ..core.configuration import Configuration
from ..core.errors import SimulationError
from ..core.protocol import Protocol
from .reachability import explore

__all__ = ["ExactExpectation", "expected_interactions_exact"]


@dataclass(slots=True)
class ExactExpectation:
    """Exact stabilization-time moments for one protocol instance."""

    protocol: str
    n: int
    #: Number of reachable configurations.
    reachable: int
    #: Expected interactions from the designated initial configuration.
    from_initial: float
    #: Expected interactions from every reachable configuration.
    per_configuration: dict[tuple[int, ...], float]
    #: Exact variance from the initial configuration (None unless the
    #: second-moment system was solved; see ``with_variance=True``).
    variance_from_initial: float | None = None

    @property
    def std_from_initial(self) -> float | None:
        """Exact standard deviation from the initial configuration."""
        if self.variance_from_initial is None:
            return None
        return float(np.sqrt(max(self.variance_from_initial, 0.0)))

    def expectation_of(self, config: Configuration) -> float:
        """E[interactions to stability] from a given configuration."""
        try:
            return self.per_configuration[config.key]
        except KeyError:
            raise SimulationError(
                "configuration is not reachable from the designated initial state"
            ) from None


def expected_interactions_exact(
    protocol: Protocol,
    n: int,
    *,
    max_configs: int = 200_000,
    with_variance: bool = False,
) -> ExactExpectation:
    """Solve the first-step equations for the expected interaction count.

    Requires the protocol to provide a stability predicate (all the
    partition protocols do) or stable-silent semantics, and every
    reachable configuration to reach stability (guaranteed for correct
    protocols; a singular system otherwise raises).

    With ``with_variance=True`` the second-moment system is solved as
    well (same matrix, new right-hand side): writing the time from a
    non-stable ``C`` as ``T_C = G + T'`` with ``G`` geometric
    (mean ``1/p``, second moment ``(2 - p)/p^2`` for ``p = W/T``)
    independent of the successor choice,

        E[T_C^2] = E[G^2] + 2 E[G] * sum_r P_r E[T_{C_r}]
                          + sum_r P_r E[T_{C_r}^2]

    which yields the exact variance of the stabilization time.

    Exponential in the worst case — intended for small populations.
    """
    initial = Configuration.initial(protocol, n)
    pred = protocol.stability_predicate(n)

    def is_stable(config: Configuration) -> bool:
        if pred is not None:
            return bool(pred(config.counts))
        return config.is_silent()

    graph = explore(initial, max_configs=max_configs)
    keys = list(graph.nodes)
    index = {key: i for i, key in enumerate(keys)}
    m = len(keys)
    T = n * (n - 1)  # ordered distinct pairs, matching the class weights

    compiled = protocol.compiled
    A = lil_matrix((m, m))
    b = np.zeros(m)
    # Per-row data needed again for the second-moment RHS.
    row_p = np.zeros(m)          # success probability W/T (0 for stable)
    row_succ: list[list[tuple[int, float]]] = [[] for _ in range(m)]
    for key, i in index.items():
        config = graph.nodes[key]["config"]
        A[i, i] = 1.0
        if is_stable(config):
            continue  # E = 0: absorbing for the stopped process
        weights = []
        total = 0
        for cls in compiled.classes:
            w = cls.weight(config.counts)
            if w > 0:
                weights.append((cls, w))
                total += w
        if total == 0:
            raise SimulationError(
                f"configuration {config.as_dict()} is silent but not stable; "
                "the expectation diverges"
            )
        b[i] = T / total
        row_p[i] = total / T
        for cls, w in weights:
            succ = config.apply_class(cls)
            j = index[succ.key]
            A[i, j] -= w / total
            row_succ[i].append((j, w / total))

    A_csr = A.tocsr()
    first = spsolve(A_csr, b)
    per_config = {key: float(first[i]) for key, i in index.items()}

    variance = None
    if with_variance:
        b2 = np.zeros(m)
        for i in range(m):
            p = row_p[i]
            if p == 0.0:
                continue  # stable: E[T^2] = 0
            e_succ = sum(pr * first[j] for j, pr in row_succ[i])
            b2[i] = (2.0 - p) / (p * p) + 2.0 * (1.0 / p) * e_succ
        second = spsolve(A_csr, b2)
        i0 = index[initial.key]
        variance = float(second[i0] - first[i0] ** 2)

    return ExactExpectation(
        protocol=protocol.name,
        n=n,
        reachable=m,
        from_initial=per_config[initial.key],
        per_configuration=per_config,
        variance_from_initial=variance,
    )
