"""Analysis & verification: Lemma-1 invariant monitoring, stability
signatures, explicit-state model checking, convergence statistics,
grouping decomposition (Figure 4), and the paper's closed-form facts."""

from .convergence import (
    FitResult,
    confidence_interval,
    fit_exponential,
    fit_power_law,
    growth_classification,
)
from .exact import ExactExpectation, expected_interactions_exact
from .grouping import GroupingDecomposition, decompose_groupings
from .invariants import InvariantMonitor, InvariantViolation, lemma1_holds_along
from .reachability import (
    ReachabilityReport,
    explore,
    verify_kpartition,
    verify_stabilization,
)
from .scaling import (
    DEFAULT_LOG_EXPONENT_GRID,
    ScalingFit,
    bootstrap_scaling_fit,
    budget_crossing,
    fit_scaling_law,
)
from .search import (
    SearchResult,
    enumerate_group_maps,
    enumerate_rule_tables,
    enumerate_symmetric_rule_tables,
    search_lower_bound,
    solves_uniform_partition,
)
from .state_usage import StateUsage, reachable_states, state_usage_table
from .stability import (
    final_sizes_match_theory,
    groups_frozen_under_transitions,
    is_group_stable,
    is_uniform_partition,
    kpartition_stable_signature,
)
from .theory import (
    StateComplexityRow,
    approx_state_count,
    lower_bound_state_count,
    proposed_state_count,
    repeated_bipartition_state_count,
    state_complexity_row,
)

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "lemma1_holds_along",
    "kpartition_stable_signature",
    "is_uniform_partition",
    "is_group_stable",
    "groups_frozen_under_transitions",
    "final_sizes_match_theory",
    "ReachabilityReport",
    "explore",
    "verify_stabilization",
    "verify_kpartition",
    "FitResult",
    "fit_power_law",
    "fit_exponential",
    "confidence_interval",
    "growth_classification",
    "ScalingFit",
    "fit_scaling_law",
    "bootstrap_scaling_fit",
    "DEFAULT_LOG_EXPONENT_GRID",
    "budget_crossing",
    "GroupingDecomposition",
    "decompose_groupings",
    "ExactExpectation",
    "expected_interactions_exact",
    "SearchResult",
    "enumerate_symmetric_rule_tables",
    "enumerate_rule_tables",
    "enumerate_group_maps",
    "search_lower_bound",
    "solves_uniform_partition",
    "StateUsage",
    "reachable_states",
    "state_usage_table",
    "StateComplexityRow",
    "proposed_state_count",
    "approx_state_count",
    "lower_bound_state_count",
    "repeated_bipartition_state_count",
    "state_complexity_row",
]
