"""Stability analysis (Lemmas 4-6 of the paper, made executable).

Section 2.2 defines a configuration ``C`` as *stable* when there is a
partition ``{G_1..G_k}`` with ``||G_i| - |G_j|| <= 1`` such that in
every configuration reachable from ``C`` each agent of ``G_i`` still
belongs to group ``i``.  Lemmas 4-6 pin down the unique stable count
signature the protocol reaches; this module exposes both views:

* :func:`kpartition_stable_signature` — the closed-form signature.
* :func:`is_group_stable` — the semantic definition, decided by
  exploring the reachable set (exact, for small populations; used by
  the model checker to validate the closed form).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.configuration import Configuration
from ..protocols.kpartition import UniformKPartitionProtocol

__all__ = [
    "kpartition_stable_signature",
    "is_uniform_partition",
    "is_group_stable",
    "groups_frozen_under_transitions",
]


def kpartition_stable_signature(protocol: UniformKPartitionProtocol, n: int) -> dict[str, int]:
    """The unique stable count signature (Lemma 6) as a name->count map."""
    return protocol.expected_stable_counts(n)


def is_uniform_partition(sizes: Sequence[int] | np.ndarray) -> bool:
    """The uniformity condition: all group sizes within 1 of each other."""
    sizes = np.asarray(sizes)
    if sizes.size == 0:
        return False
    return int(sizes.max() - sizes.min()) <= 1


def groups_frozen_under_transitions(config: Configuration) -> bool:
    """True when every enabled transition preserves both agents' groups.

    This is the *one-step* group-stability condition: if it holds in
    ``C`` and in every configuration reachable from ``C``, then ``C``
    is stable in the paper's sense.  For the k-partition protocol's
    final signature the only enabled transitions are the
    ``initial <-> initial'`` flips of rule 4, which keep ``f = 1``.
    """
    protocol = config.protocol
    space = protocol.space
    for _, cls in config.enabled_classes():
        if space.group_of(cls.in1) != space.group_of(cls.out1):
            return False
        if space.group_of(cls.in2) != space.group_of(cls.out2):
            return False
    return True


def is_group_stable(config: Configuration, *, max_configs: int = 200_000) -> bool:
    """Exact semantic stability check by reachable-set exploration.

    A configuration is group-stable when every transition enabled in
    any reachable configuration preserves the groups of both agents
    involved.  (This is the count-quotient formulation of Section 2.2's
    per-agent condition: agents only change state by participating in a
    transition, so if all enabled transitions everywhere downstream are
    group-preserving, no agent's group can ever change.)

    Exponential in the worst case — intended for small populations and
    the validation of closed-form signatures.
    """
    seen: set[tuple[int, ...]] = set()
    stack = [config]
    seen.add(config.key)
    while stack:
        current = stack.pop()
        if not groups_frozen_under_transitions(current):
            return False
        for succ in current.successors():
            if succ.key not in seen:
                if len(seen) >= max_configs:
                    raise MemoryError(
                        f"reachable set exceeded {max_configs} configurations"
                    )
                seen.add(succ.key)
                stack.append(succ)
    return True


def final_sizes_match_theory(
    protocol: UniformKPartitionProtocol, counts: Sequence[int] | np.ndarray
) -> bool:
    """Compare simulated final group sizes to the Lemma-6 prediction."""
    counts = np.asarray(counts, dtype=np.int64)
    n = int(counts.sum())
    return bool(
        (protocol.group_sizes(counts) == protocol.expected_group_sizes(n)).all()
    )
