"""Reachable-state analysis: which states a protocol actually uses.

The paper's 3k - 2 bound counts the states an agent *may* need; for a
given population size some states can be provably unreachable.  Two
interesting instances:

* ``d_{k-2}`` requires an ``m_{k-1}`` agent to collide with another
  chain, which needs at least two concurrent chains — impossible when
  ``n`` is small;
* deep D-states in general appear only once ``n`` is large enough to
  host two long chains simultaneously.

:func:`reachable_states` derives the exact reachable state set from
the model checker's configuration graph, and
:func:`state_usage_table` summarizes usage per population size — a
small original analysis that sharpens the space-complexity story
(the 3k - 2 states are all *eventually* needed: for every state there
is an n that reaches it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.configuration import Configuration
from ..core.protocol import Protocol
from .reachability import explore

__all__ = ["StateUsage", "reachable_states", "state_usage_table"]


@dataclass(frozen=True, slots=True)
class StateUsage:
    """Reachable-state summary for one (protocol, n) instance."""

    protocol: str
    n: int
    #: States occupied in at least one reachable configuration.
    used: frozenset[str]
    #: States never occupied from the designated initial configuration.
    unused: frozenset[str]

    @property
    def usage_fraction(self) -> float:
        total = len(self.used) + len(self.unused)
        return len(self.used) / total if total else 0.0


def reachable_states(
    protocol: Protocol,
    n: int,
    *,
    max_configs: int = 500_000,
) -> StateUsage:
    """Exact reachable state set from the designated initial configuration."""
    initial = Configuration.initial(protocol, n)
    graph = explore(initial, max_configs=max_configs)
    used: set[str] = set()
    names = protocol.space.names
    for _, data in graph.nodes(data=True):
        counts = data["config"].counts
        for i, c in enumerate(counts):
            if c:
                used.add(names[i])
        if len(used) == len(names):
            break
    return StateUsage(
        protocol=protocol.name,
        n=n,
        used=frozenset(used),
        unused=frozenset(set(names) - used),
    )


def state_usage_table(
    protocol: Protocol,
    n_values,
    *,
    max_configs: int = 500_000,
) -> list[StateUsage]:
    """Reachable-state summaries across population sizes."""
    return [
        reachable_states(protocol, n, max_configs=max_configs) for n in n_values
    ]
