"""Convergence statistics and scaling-law fits.

The paper's Section 5 draws two qualitative conclusions from its
simulations:

* the number of interactions grows *more than linearly but less than
  exponentially* with the population size ``n`` (Figure 5), and
* it grows *exponentially* with the number of groups ``k`` (Figure 6).

These helpers quantify both claims from trial data: power-law and
exponential least-squares fits with simple goodness-of-fit scores, so
EXPERIMENTS.md can report measured exponents instead of eyeballed
shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = [
    "FitResult",
    "fit_power_law",
    "fit_exponential",
    "confidence_interval",
    "growth_classification",
]


@dataclass(frozen=True, slots=True)
class FitResult:
    """A least-squares fit ``y = a * f(x; b)`` in transformed space."""

    model: str
    #: Prefactor ``a``.
    amplitude: float
    #: Exponent: ``y = a * x**b`` (power) or ``y = a * b**x`` (exponential).
    exponent: float
    #: Coefficient of determination in the fitted (log) space.
    r_squared: float

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        if self.model == "power":
            return self.amplitude * x**self.exponent
        return self.amplitude * self.exponent**x


def _r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    ss_res = float(((y - y_hat) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a * x^b`` by least squares in log-log space.

    ``b`` near 1 means linear growth; the paper's Figure 5 data lands
    around 1.1-1.5 depending on k.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 2 or x.size != y.size:
        raise ValueError("need at least two (x, y) points of equal length")
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("power-law fits require positive data")
    lx, ly = np.log(x), np.log(y)
    b, log_a = np.polyfit(lx, ly, 1)
    fit = np.polyval([b, log_a], lx)
    return FitResult("power", float(np.exp(log_a)), float(b), _r_squared(ly, fit))


def fit_exponential(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = a * b^x`` by least squares in semi-log space.

    ``b`` is the per-unit growth factor; the paper's Figure 6 claims
    exponential growth in k, i.e. ``b`` substantially above 1 with a
    good semi-log fit.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 2 or x.size != y.size:
        raise ValueError("need at least two (x, y) points of equal length")
    if (y <= 0).any():
        raise ValueError("exponential fits require positive y data")
    ly = np.log(y)
    log_b, log_a = np.polyfit(x, ly, 1)
    fit = np.polyval([log_b, log_a], x)
    return FitResult("exponential", float(np.exp(log_a)), float(np.exp(log_b)), _r_squared(ly, fit))


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation confidence interval for a sample mean."""
    from scipy import stats

    samples = np.asarray(samples, dtype=np.float64)
    if samples.size < 2:
        m = float(samples.mean()) if samples.size else float("nan")
        return (m, m)
    sem = float(samples.std(ddof=1) / np.sqrt(samples.size))
    z = float(stats.norm.ppf(0.5 + confidence / 2))
    m = float(samples.mean())
    return (m - z * sem, m + z * sem)


def growth_classification(x: Sequence[float], y: Sequence[float]) -> str:
    """Classify growth as the better of power-law vs exponential.

    Returns ``"power(b=...)"`` or ``"exponential(b=...)"`` depending on
    which transformed-space fit explains the data better.  Used by the
    experiment harness to state the Figure 5/6 conclusions.
    """
    p = fit_power_law(x, y)
    e = fit_exponential(x, y)
    if p.r_squared >= e.r_squared:
        return f"power(b={p.exponent:.2f}, R2={p.r_squared:.3f})"
    return f"exponential(b={e.exponent:.2f}, R2={e.r_squared:.3f})"
