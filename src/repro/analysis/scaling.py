"""Scaling-law fitting with bootstrap confidence intervals.

The scaling-law study (``repro-experiments scaling-law``) extends the
paper's convergence figures — which stop near n = 1000 — by one to
three orders of magnitude and asks a sharper question than
"superlinear, subexponential": *which* law.  The model fitted here is

    interactions ~ a * n^b * (ln n)^c

whose log transform ``ln y = ln a + b ln n + c ln ln n`` is linear in
``(ln a, b, c)`` and solved by least squares.  A pure power law is the
``c = 0`` restriction of the same design matrix, so comparing the two
fits is an apples-to-apples R² question.

Uncertainty comes from a nonparametric bootstrap over the *per-trial*
samples at each sweep point: every resample redraws each point's
trials with replacement, refits, and the percentile spread of the
resulting exponents is the confidence interval.  That respects the
structure of the data (trials within a point are exchangeable, points
are not) without assuming Gaussian residuals.

:func:`budget_crossing` inverts the fitted law — given an interaction
budget, where does the protocol's expected cost cross it?  The fitted
mean is monotone in n for every physically sensible fit (b > 0), so
bisection on ``log10 n`` suffices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..core.errors import AnalysisError

__all__ = [
    "ScalingFit",
    "DEFAULT_LOG_EXPONENT_GRID",
    "fit_scaling_law",
    "bootstrap_scaling_fit",
    "budget_crossing",
]


@dataclass(frozen=True, slots=True)
class ScalingFit:
    """One fitted ``y = a * n^b * (ln n)^c`` law.

    ``ci_*`` bounds are percentile bootstrap intervals and are ``None``
    until :func:`bootstrap_scaling_fit` fills them in.
    """

    amplitude: float  # a
    exponent: float  # b — the power of n
    log_exponent: float  # c — the power of ln n
    r_squared: float
    points: int
    ci_exponent: tuple[float, float] | None = None
    ci_log_exponent: tuple[float, float] | None = None
    resamples: int = 0

    def predict(self, n: float) -> float:
        """Expected interactions at population size ``n``."""
        if n <= 1:
            raise AnalysisError(f"scaling fits need n > 1, got {n}")
        return (
            self.amplitude
            * n ** self.exponent
            * math.log(n) ** self.log_exponent
        )

    def describe(self) -> str:
        parts = [
            f"a={self.amplitude:.4g}",
            f"b={self.exponent:.3f}",
            f"c={self.log_exponent:.3f}",
            f"R2={self.r_squared:.4f}",
        ]
        if self.ci_exponent is not None:
            lo, hi = self.ci_exponent
            parts.append(f"b95=[{lo:.3f},{hi:.3f}]")
        if self.ci_log_exponent is not None:
            lo, hi = self.ci_log_exponent
            parts.append(f"c95=[{lo:.3f},{hi:.3f}]")
        return " ".join(parts)


def _design(ns: np.ndarray) -> np.ndarray:
    log_n = np.log(ns)
    return np.column_stack([np.ones_like(log_n), log_n, np.log(log_n)])


#: Log-power candidates for the constrained fit.  Polylog factors in
#: population-protocol time bounds come in small integer powers; a
#: discrete grid keeps b identifiable where the free fit is collinear.
DEFAULT_LOG_EXPONENT_GRID: tuple[float, ...] = (0.0, 1.0, 2.0)


def fit_scaling_law(
    ns: Sequence[float],
    ys: Sequence[float],
    *,
    log_exponent_grid: Sequence[float] | None = None,
) -> ScalingFit:
    """Least-squares fit of ``y = a * n^b * (ln n)^c`` in log space.

    Needs at least three points (three free parameters) with ``n > 1``
    and ``y > 0``.  With exactly three points the fit is exact and R²
    is reported as 1.

    By default all three parameters are free.  Over a narrow n-range
    ``ln n`` and ``ln ln n`` are nearly collinear and the free fit
    trades b against c wildly while barely moving the residual — pass
    ``log_exponent_grid`` (e.g. :data:`DEFAULT_LOG_EXPONENT_GRID`) to
    restrict c to discrete candidates: ``(a, b)`` are then fitted per
    candidate and the lowest-residual c wins, which keeps the exponent
    of n identifiable.
    """
    ns_arr = np.asarray(list(ns), dtype=np.float64)
    ys_arr = np.asarray(list(ys), dtype=np.float64)
    if ns_arr.shape != ys_arr.shape or ns_arr.size < 3:
        raise AnalysisError(
            f"scaling fits need >= 3 matched (n, y) points, got {ns_arr.size}"
        )
    if np.any(ns_arr <= 1) or np.any(ys_arr <= 0):
        raise AnalysisError("scaling fits need n > 1 and y > 0 at every point")
    log_y = np.log(ys_arr)
    if log_exponent_grid is None:
        design = _design(ns_arr)
        coef, *_ = np.linalg.lstsq(design, log_y, rcond=None)
        log_a, b, c = (float(v) for v in coef)
        residuals = log_y - design @ coef
    else:
        if not log_exponent_grid:
            raise AnalysisError("log_exponent_grid must not be empty")
        design = _design(ns_arr)[:, :2]  # [1, ln n]
        loglog_n = np.log(np.log(ns_arr))
        best = None
        for candidate in log_exponent_grid:
            target = log_y - candidate * loglog_n
            coef, *_ = np.linalg.lstsq(design, target, rcond=None)
            res = target - design @ coef
            ssr = float(res @ res)
            if best is None or ssr < best[0]:
                best = (ssr, candidate, coef, res)
        _, c, coef, residuals = best
        log_a, b = float(coef[0]), float(coef[1])
    total = log_y - log_y.mean()
    ss_tot = float(total @ total)
    r2 = (
        1.0 if ss_tot == 0
        else 1.0 - float(residuals @ residuals) / ss_tot
    )
    return ScalingFit(
        amplitude=float(np.exp(log_a)),
        exponent=b,
        log_exponent=float(c),
        r_squared=r2,
        points=int(ns_arr.size),
    )


def bootstrap_scaling_fit(
    samples: Mapping[float, Sequence[float]],
    *,
    resamples: int = 200,
    seed: int = 0,
    confidence: float = 0.95,
    log_exponent_grid: Sequence[float] | None = None,
) -> ScalingFit:
    """Fit with percentile-bootstrap CIs over per-point trial samples.

    ``samples`` maps each population size to its per-trial interaction
    counts.  The point estimate fits the per-point means; each
    bootstrap replicate redraws every point's trials with replacement
    (points themselves are fixed — they are design, not data), refits,
    and the ``confidence`` percentile band of the replicated ``b`` and
    ``c`` becomes the reported intervals.
    """
    if resamples < 1:
        raise AnalysisError(f"resamples must be positive, got {resamples}")
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    ns = sorted(samples)
    per_point = [
        np.asarray(list(samples[n]), dtype=np.float64) for n in ns
    ]
    if any(p.size == 0 for p in per_point):
        raise AnalysisError("every sweep point needs at least one trial")
    base = fit_scaling_law(
        ns,
        [float(p.mean()) for p in per_point],
        log_exponent_grid=log_exponent_grid,
    )

    rng = np.random.default_rng(seed)
    exps = np.empty(resamples)
    log_exps = np.empty(resamples)
    for r in range(resamples):
        means = [
            float(rng.choice(p, size=p.size, replace=True).mean())
            for p in per_point
        ]
        fit = fit_scaling_law(
            ns, means, log_exponent_grid=log_exponent_grid
        )
        exps[r] = fit.exponent
        log_exps[r] = fit.log_exponent
    tail = (1.0 - confidence) / 2.0
    lo, hi = 100 * tail, 100 * (1 - tail)
    return ScalingFit(
        amplitude=base.amplitude,
        exponent=base.exponent,
        log_exponent=base.log_exponent,
        r_squared=base.r_squared,
        points=base.points,
        ci_exponent=(
            float(np.percentile(exps, lo)),
            float(np.percentile(exps, hi)),
        ),
        ci_log_exponent=(
            float(np.percentile(log_exps, lo)),
            float(np.percentile(log_exps, hi)),
        ),
        resamples=resamples,
    )


def budget_crossing(
    fit: ScalingFit,
    budget: float,
    *,
    n_max: float = 1e12,
) -> float | None:
    """Smallest n whose expected interactions exceed ``budget``.

    Bisection on ``log10 n`` over [2, n_max].  Returns ``None`` when
    the fitted curve never crosses the budget below ``n_max`` (or the
    fit is decreasing — ``b <= 0`` fits are reported, not inverted).
    """
    if budget <= 0:
        raise AnalysisError(f"budget must be positive, got {budget}")
    if fit.exponent <= 0:
        return None
    lo, hi = math.log10(2.0), math.log10(n_max)
    if fit.predict(10 ** hi) <= budget:
        return None
    if fit.predict(10 ** lo) > budget:
        return 2.0
    for _ in range(200):
        mid = (lo + hi) / 2
        if fit.predict(10 ** mid) > budget:
            hi = mid
        else:
            lo = mid
    return float(10 ** hi)
