"""Uniform k-partition under *weak* fairness (base-station construction).

The source paper proves its 3k-2-state protocol correct under **global**
fairness: whenever a configuration recurs forever, every successor of it
must also occur.  Weak fairness promises far less — only that every
*pair* of agents interacts infinitely often — and the paper's protocol
genuinely needs the stronger assumption: under a deterministic
round-robin sweep (weakly fair, not globally fair) rules 1-2 can flip
``initial <-> initial'`` in lockstep forever and the symmetry-breaking
rule 5 never fires (``tests/scheduling/test_adversarial.py`` pins that
livelock).

The follow-up line of work (arXiv:1911.04678, same group) studies
exactly this relaxation.  The construction implemented here is the
*base-station* (coordinator) variant of that family: one designated
agent starts as the coordinator ``bs_1`` and assigns output groups
cyclically; everybody else starts ``free``::

    (bs_i, free) -> (bs_{(i mod k) + 1}, g_i)        for i = 1..k

and the coordinator itself outputs group ``f(bs_i) = i`` — the group it
would hand out next — so the terminal configuration is exactly uniform:
``n - 1`` agents receive ``g_1, g_2, g_3, ...`` cyclically and the
coordinator completes the trailing partial cycle.

Why this is correct under weak fairness (and even under a deterministic
round-robin sweep): the number of ``free`` agents strictly decreases at
every effective interaction and a ``(bs, free)`` pair stays enabled as
long as any ``free`` remains, so any schedule in which every pair meets
infinitely often drains the frees in at most ``n - 1`` effective
interactions; after that the configuration is silent.  No configuration
ever admits a step that changes a committed group, so stabilization is
monotone — there is nothing for an unfair-but-weakly-fair adversary to
exploit.  The price of weak fairness is the designated coordinator
(``2k + 1`` states instead of ``3k - 2`` fully symmetric ones); see
``docs/scenarios.md`` for the proved-vs-observed grid.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.errors import ProtocolError
from ..core.protocol import Protocol, StabilitySignature
from ..core.state import StateSpace
from ..core.transitions import TransitionTable

__all__ = ["WeakKPartitionProtocol", "weak_k_partition", "FREE"]

#: The non-coordinator designated initial state.
FREE = "free"


def _bs(i: int) -> str:
    return f"bs_{i}"


def _g(i: int) -> str:
    return f"g_{i}"


class WeakKPartitionProtocol(Protocol):
    """Base-station uniform k-partition, correct under weak fairness.

    States (``2k + 1``): the coordinator chain ``bs_1 .. bs_k``, the
    shared ``free`` state, and the committed groups ``g_1 .. g_k``.
    The designated initial configuration places exactly one agent in
    ``bs_1`` (the base station) and ``n - 1`` agents in ``free``.
    """

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ProtocolError(f"k must be at least 2, got {k}")
        self._k = k
        bs_names = [_bs(i) for i in range(1, k + 1)]
        g_names = [_g(i) for i in range(1, k + 1)]
        names = bs_names + [FREE] + g_names
        groups = {_bs(i): i for i in range(1, k + 1)}
        groups[FREE] = 1
        groups.update({_g(i): i for i in range(1, k + 1)})
        space = StateSpace(names, groups=groups, num_groups=k)
        table = TransitionTable(space)
        for i in range(1, k + 1):
            nxt = i % k + 1
            table.add(_bs(i), FREE, _bs(nxt), _g(i))
        super().__init__(
            name=f"weak-{k}-partition",
            space=space,
            transitions=table,
            initial_state=FREE,
            initial_counts_factory=self._make_initial_counts,
            stability_predicate_factory=self._make_stability_predicate,
            batch_stability_predicate_factory=self._make_batch_predicate,
            stability_signature_factory=self._make_stability_signature,
            metadata={
                "k": k,
                "states": 2 * k + 1,
                "fairness": "weak",
                "paper": "Yasumi et al., arXiv:1911.04678 (base-station variant)",
            },
            require_symmetric=True,
        )
        self._free_idx = space.index(FREE)
        self._bs_idx = tuple(space.index(_bs(i)) for i in range(1, k + 1))
        self._g_idx = tuple(space.index(_g(i)) for i in range(1, k + 1))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self._k

    @property
    def free_index(self) -> int:
        return self._free_idx

    @property
    def bs_indices(self) -> tuple[int, ...]:
        """State indices of ``bs_1 .. bs_k`` (exactly one is occupied)."""
        return self._bs_idx

    @property
    def g_indices(self) -> tuple[int, ...]:
        return self._g_idx

    # ------------------------------------------------------------------
    # Designated initial configuration: one coordinator, n-1 frees
    # ------------------------------------------------------------------
    def _make_initial_counts(self, n: int) -> np.ndarray:
        if n < 2:
            raise ProtocolError(
                f"the base-station construction needs n >= 2, got {n}"
            )
        counts = np.zeros(self.num_states, dtype=np.int64)
        counts[self._bs_idx[0]] = 1
        counts[self._free_idx] = n - 1
        return counts

    # ------------------------------------------------------------------
    # Stability: no free agent left (the terminal configuration is
    # silent, so the predicate exists purely as the cheap exact test)
    # ------------------------------------------------------------------
    def _make_stability_predicate(self, n: int):
        free = self._free_idx

        def stable(counts: Sequence[int]) -> bool:
            return counts[free] == 0

        return stable

    def _make_batch_predicate(self, n: int):
        free = self._free_idx

        def stable(count_matrix: np.ndarray) -> np.ndarray:
            return count_matrix[:, free] == 0

        return stable

    def _make_stability_signature(self, n: int) -> StabilitySignature:
        return StabilitySignature((((self._free_idx,), 0),))

    # ------------------------------------------------------------------
    # Closed forms
    # ------------------------------------------------------------------
    def expected_group_sizes(self, n: int) -> np.ndarray:
        """Final sizes: ``n mod k`` groups of ``ceil(n/k)``, rest floor.

        The coordinator assigns ``g_1, g_2, ...`` cyclically to the
        ``n - 1`` frees and finishes in ``bs_t`` with ``t = ((n - 1)
        mod k) + 1``, contributing its own output ``t`` — so groups
        ``1 .. n mod k`` hold ``floor(n/k) + 1`` agents each.
        """
        if n < 2:
            raise ProtocolError(f"population size must be at least 2, got {n}")
        q, r = divmod(n, self._k)
        sizes = np.full(self._k, q, dtype=np.int64)
        sizes[:r] += 1
        return sizes

    def assignment_residuals(self, counts: Sequence[int] | np.ndarray) -> np.ndarray:
        """The construction's conservation law, as residuals (all zero).

        At every reachable configuration the coordinator sits in some
        ``bs_t`` and has assigned groups cyclically, so the committed
        counts form an exact prefix staircase anchored at ``g_k``::

            #g_x - #g_k - [x <= t - 1] = 0    for every x

        This is the weak-fairness analogue of the source paper's
        Lemma 1 residuals: a single corrupted transition-table entry
        breaks it immediately, which is what the conformance invariant
        pack checks.
        """
        counts = np.asarray(counts, dtype=np.int64)
        bs = counts[list(self._bs_idx)]
        if int(bs.sum()) != 1:
            # Not a reachable configuration; report the staircase raw.
            t = 1
        else:
            t = int(np.flatnonzero(bs)[0]) + 1
        g = counts[list(self._g_idx)]
        expected = g[-1] + (np.arange(1, self._k + 1) <= t - 1)
        return g - expected

    def coordinator_count(self, counts: Sequence[int] | np.ndarray) -> int:
        """Total agents in ``bs_*`` states (exactly 1 when reachable)."""
        counts = np.asarray(counts, dtype=np.int64)
        return int(counts[list(self._bs_idx)].sum())


def weak_k_partition(k: int) -> WeakKPartitionProtocol:
    """Build the weak-fairness base-station uniform k-partition protocol."""
    return WeakKPartitionProtocol(k)
