"""A small name-based registry of the protocols in this library.

The experiment CLI and examples build protocols from string names, so
the registry keeps the mapping in one place::

    >>> from repro.protocols.registry import build_protocol
    >>> build_protocol("uniform-k-partition", k=4).num_states
    10
"""

from __future__ import annotations

import difflib
from collections.abc import Callable

from ..core.errors import ProtocolError, UnknownProtocolError
from ..core.protocol import Protocol
from .approx_partition import approximate_k_partition
from .bipartition import uniform_bipartition
from .graph_bipartition import graph_bipartition
from .kpartition import uniform_k_partition
from .leader_election import leader_election
from .majority import approximate_majority
from .repeated_bipartition import repeated_bipartition
from .rgeneralized import r_generalized_partition
from .weak_kpartition import weak_k_partition

__all__ = ["PROTOCOL_BUILDERS", "build_protocol", "available_protocols"]

#: Maps protocol name to a builder callable.  Builders take the
#: protocol-specific parameters as keyword arguments.
PROTOCOL_BUILDERS: dict[str, Callable[..., Protocol]] = {
    "uniform-k-partition": uniform_k_partition,
    "uniform-bipartition": uniform_bipartition,
    "repeated-bipartition": repeated_bipartition,
    "approx-k-partition": approximate_k_partition,
    "r-generalized-partition": r_generalized_partition,
    "leader-election": leader_election,
    "approximate-majority": approximate_majority,
    "weak-k-partition": weak_k_partition,
    "graph-bipartition": graph_bipartition,
}


def available_protocols() -> list[str]:
    """Names accepted by :func:`build_protocol`, sorted."""
    return sorted(PROTOCOL_BUILDERS)


def build_protocol(name: str, /, **params: object) -> Protocol:
    """Instantiate a protocol by registry name.

    Parameters are forwarded to the protocol constructor, e.g.
    ``build_protocol("uniform-k-partition", k=5)`` or
    ``build_protocol("r-generalized-partition", ratio=(1, 2, 3))``.
    """
    try:
        builder = PROTOCOL_BUILDERS[name]
    except KeyError:
        message = (
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        )
        close = difflib.get_close_matches(name, available_protocols(), n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        raise UnknownProtocolError(message) from None
    try:
        return builder(**params)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ProtocolError(f"bad parameters for protocol {name!r}: {exc}") from exc


def register_protocol(name: str, builder: Callable[..., Protocol]) -> None:
    """Add a protocol builder (for downstream extensions)."""
    if name in PROTOCOL_BUILDERS:
        raise ProtocolError(f"protocol name {name!r} is already registered")
    PROTOCOL_BUILDERS[name] = builder
