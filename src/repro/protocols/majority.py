"""Three-state approximate majority — a classic building-block protocol.

The paper's related-work section surveys majority protocols [1, 3, 6,
16]; this module implements the three-state *polling* variant so the
framework's support for protocols **without designated initial states**
is exercised (the initial configuration is an arbitrary mix of the two
colors).

States ``x``, ``y`` (the two opinions) and ``b`` (blank / undecided)::

    (x, y) -> (b, b)        conflicting opinions cancel
    (x, b) -> (x, x)        an opinion recruits a blank
    (y, b) -> (y, y)

All three rules are symmetric in this variant (the cancellation
produces equal outputs), so the protocol fits the paper's symmetric
class.  Under the uniform scheduler the initial majority wins with high
probability when the margin is large; with a zero margin the population
can converge to all-blank.  Stable configurations are exactly the
silent consensus configurations (all ``x``, all ``y``, or all ``b``),
so engines use silence detection.
"""

from __future__ import annotations

import numpy as np

from ..core.configuration import Configuration
from ..core.errors import ConfigurationError
from ..core.protocol import Protocol
from ..core.state import StateSpace
from ..core.transitions import TransitionTable

__all__ = ["ApproximateMajorityProtocol", "approximate_majority"]


class ApproximateMajorityProtocol(Protocol):
    """The three-state approximate-majority protocol.

    Two variants:

    * ``variant="symmetric"`` (default) — the polling form used in the
      module docstring: conflicting opinions cancel to blank,
      ``(x, y) -> (b, b)``.  Fits the paper's symmetric protocol class.
    * ``variant="initiator"`` — the classic Angluin-Aspnes-Eisenstat
      form where the *initiator's* opinion wins a conflict:
      ``(x, y) -> (x, b)`` and ``(y, x) -> (y, b)``.  This is an
      *oriented* protocol (the two orientations of a meeting differ),
      exercising the framework's ordered-pair support.
    """

    def __init__(self, variant: str = "symmetric") -> None:
        if variant not in ("symmetric", "initiator"):
            raise ConfigurationError(
                f"variant must be 'symmetric' or 'initiator', got {variant!r}"
            )
        space = StateSpace(["x", "y", "b"], groups={"x": 1, "y": 2, "b": 3}, num_groups=3)
        table = TransitionTable(space)
        if variant == "symmetric":
            table.add("x", "y", "b", "b")
        else:
            table.add("x", "y", "x", "b", mirror=False)
            table.add("y", "x", "y", "b", mirror=False)
        table.add("x", "b", "x", "x")
        table.add("y", "b", "y", "y")
        self._variant = variant
        super().__init__(
            name=f"approximate-majority-{variant}",
            space=space,
            transitions=table,
            initial_state=None,  # initial opinions are an input
            metadata={"states": 3, "variant": variant},
        )

    @property
    def variant(self) -> str:
        return self._variant

    def opinion_configuration(self, num_x: int, num_y: int, num_blank: int = 0) -> Configuration:
        """Build an initial configuration from opinion counts."""
        if min(num_x, num_y, num_blank) < 0:
            raise ConfigurationError("opinion counts must be non-negative")
        if num_x + num_y + num_blank < 1:
            raise ConfigurationError("population must be non-empty")
        return Configuration.from_mapping(
            self, {"x": num_x, "y": num_y, "b": num_blank}
        )

    def winner(self, counts) -> str | None:
        """The consensus opinion of a silent configuration (or None)."""
        counts = np.asarray(counts)
        x = counts[self.space.index("x")]
        y = counts[self.space.index("y")]
        b = counts[self.space.index("b")]
        n = x + y + b
        if x == n:
            return "x"
        if y == n:
            return "y"
        if b == n:
            return "b"
        return None


def approximate_majority(variant: str = "symmetric") -> ApproximateMajorityProtocol:
    """Build the three-state approximate-majority protocol."""
    return ApproximateMajorityProtocol(variant)
