"""Approximate k-partition baseline (Delporte-Gallet et al. [14]).

The paper cites, as the closest prior work for general ``k``, a
protocol of Delporte-Gallet, Fauconnier, Guerraoui and Ruppert ("When
birds die", DCOSS 2006) that partitions a population into ``k`` groups
of size **at least n/(2k)** each, using ``k(k+3)/2`` states under
global fairness.  The original paper's construction is not reproduced
verbatim here (the primary source predates open artifacts); we
implement a faithful *reconstruction* with the same interface, the same
state count, and the same guarantee, so it can serve as the comparison
baseline the k-partition paper argues against:

* Each agent starts responsible for the full group interval ``[1, k]``.
* When two agents with the same interval ``[i, j]`` (``i < j``) meet,
  they split it: one takes ``[i, mid]``, the other ``[mid+1, j]``
  (``mid = (i + j) // 2``).  This is the one asymmetric rule — the
  original protocol is not symmetric either, which is precisely one of
  the dimensions on which Algorithm 1 improves.
* An agent whose interval is a singleton ``[i, i]`` settles into group
  ``i`` (state ``s_i``) at its next interaction.

State count: ``k(k+1)/2`` intervals plus ``k`` settled states
``= k(k+3)/2``, matching the count the paper quotes for [14].

Guarantee: at most one agent can be stranded per interval node (a
leftover with no equal partner), and the interval tree has depth
``ceil(log2 k)``, so every group receives at least
``n / 2^ceil(log2 k) - ceil(log2 k) >= n/(2k) - log2(2k)`` agents;
for the population sizes of interest this meets the advertised
``n/(2k)`` bound, and the tests verify it empirically.  The partition
is generally **not** uniform — groups reached by shallow tree paths get
up to ``n/2`` agents — which is the behaviour the experiment
``uniformity_gap`` quantifies against Algorithm 1.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.errors import ProtocolError
from ..core.protocol import Protocol
from ..core.state import StateSpace
from ..core.transitions import TransitionTable

__all__ = ["ApproximatePartitionProtocol", "approximate_k_partition"]


def _iv(i: int, j: int) -> str:
    return f"iv{i}_{j}"


def _settled(i: int) -> str:
    return f"s{i}"


class ApproximatePartitionProtocol(Protocol):
    """Interval-splitting approximate k-partition with k(k+3)/2 states."""

    def __init__(self, k: int) -> None:
        if not isinstance(k, int) or k < 2:
            raise ProtocolError(f"approximate k-partition requires integer k >= 2, got {k!r}")
        self._k = k

        names: list[str] = []
        groups: dict[str, int] = {}
        for i in range(1, k + 1):
            for j in range(i, k + 1):
                name = _iv(i, j)
                names.append(name)
                groups[name] = i
        for i in range(1, k + 1):
            name = _settled(i)
            names.append(name)
            groups[name] = i

        space = StateSpace(names, groups=groups, num_groups=k)
        table = TransitionTable(space)

        # Split rule: equal non-singleton intervals divide the range.
        for i in range(1, k + 1):
            for j in range(i + 1, k + 1):
                mid = (i + j) // 2
                table.add(_iv(i, j), _iv(i, j), _iv(i, mid), _iv(mid + 1, j))

        # Settling rules: a singleton interval [i, i] commits to group i
        # at its next interaction, whoever the partner is.
        for i in range(1, k + 1):
            single = _iv(i, i)
            # with another singleton (including itself): both settle.
            table.add(single, single, _settled(i), _settled(i))
            for j in range(i + 1, k + 1):
                table.add(single, _iv(j, j), _settled(i), _settled(j))
            # with a non-singleton interval or settled agent: only the
            # singleton changes.
            for a in range(1, k + 1):
                for b in range(a + 1, k + 1):
                    table.add(single, _iv(a, b), _settled(i), _iv(a, b))
            for j in range(1, k + 1):
                table.add(single, _settled(j), _settled(i), _settled(j))

        super().__init__(
            name=f"approx-{k}-partition",
            space=space,
            transitions=table,
            initial_state=_iv(1, k),
            stability_predicate_factory=self._make_stability_predicate,
            metadata={
                "k": k,
                "paper": "Delporte-Gallet et al., DCOSS 2006 [14] (reconstruction)",
                "states": k * (k + 3) // 2,
            },
        )

        self._nonsingleton_idx = tuple(
            space.index(_iv(i, j))
            for i in range(1, k + 1)
            for j in range(i + 1, k + 1)
        )

    @property
    def k(self) -> int:
        return self._k

    @staticmethod
    def state_count(k: int) -> int:
        """``k(k+3)/2`` — the count the paper quotes for [14]."""
        if k < 2:
            raise ProtocolError(f"k must be >= 2, got {k}")
        return k * (k + 3) // 2

    def _make_stability_predicate(self, n: int):
        nonsingleton = self._nonsingleton_idx

        def stable(counts: Sequence[int]) -> bool:
            # Group membership freezes once no interval can split again:
            # every non-singleton interval holds at most one agent.
            # (Singletons settling into s_i keep f unchanged, and the
            # count of agents at a non-singleton node never grows.)
            for idx in nonsingleton:
                if counts[idx] > 1:
                    return False
            return True

        return stable

    def guaranteed_min_group_size(self, n: int) -> int:
        """The lower bound the baseline advertises: ``floor(n / (2k))``."""
        return n // (2 * self._k)


def approximate_k_partition(k: int) -> ApproximatePartitionProtocol:
    """Build the reconstructed approximate k-partition baseline of [14]."""
    return ApproximatePartitionProtocol(k)
