"""Parallel composition of population protocols.

The standard product construction: agents run two protocols side by
side, and one physical interaction applies both protocols' transitions
to the respective components simultaneously.  This is the tool behind
the paper's open question on relating uniform k-partition to other
problems — e.g. composing leader election with bipartition yields a
protocol that simultaneously elects a leader *and* halves the
population, at the cost of a product state space.

Formally, for ``P1 = (Q1, d1)`` and ``P2 = (Q2, d2)`` the composition
has ``Q = Q1 x Q2`` and::

    ((p1, p2), (q1, q2)) -> ((p1', p2'), (q1', q2'))

where ``(p_i, q_i) -> (p_i', q_i')`` is ``d_i`` if defined, else the
identity.  The composition of deterministic protocols is deterministic;
of symmetric protocols, symmetric.  Stability is the conjunction of the
components' stability.

Note on fairness: under global fairness the composition stabilizes iff
both components do — the product configuration graph's reachability
factors through the components' graphs.  (The model checker can verify
composed instances directly; see the tests.)
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ProtocolError
from ..core.protocol import Protocol
from ..core.state import StateSpace
from ..core.transitions import TransitionTable

__all__ = ["ParallelComposition", "parallel_compose"]


def _pair_name(a: str, b: str) -> str:
    return f"{a}|{b}"


class ParallelComposition(Protocol):
    """Product protocol running two component protocols in lockstep.

    Parameters
    ----------
    first, second:
        The component protocols.  Both need designated initial states
        (or pass explicit initial configurations to the engines).
    groups_from:
        Which component's group map the composition exposes: ``1``,
        ``2``, or ``0`` for no group map.
    """

    def __init__(self, first: Protocol, second: Protocol, *, groups_from: int = 1) -> None:
        if groups_from not in (0, 1, 2):
            raise ProtocolError(f"groups_from must be 0, 1 or 2, got {groups_from}")
        self._first = first
        self._second = second
        self._groups_from = groups_from

        names: list[str] = []
        groups: dict[str, int] = {}
        for a in first.states:
            for b in second.states:
                name = _pair_name(a, b)
                names.append(name)
                if groups_from == 1 and first.num_groups:
                    groups[name] = first.space.group_of(a)
                elif groups_from == 2 and second.num_groups:
                    groups[name] = second.space.group_of(b)
        num_groups = (
            first.num_groups if groups_from == 1
            else second.num_groups if groups_from == 2
            else 0
        )
        space = StateSpace(
            names,
            groups=groups if groups else None,
            num_groups=num_groups or None,
        )

        table = TransitionTable(space)
        t1 = first.transitions
        t2 = second.transitions
        for pa in first.states:
            for qa in first.states:
                out1 = t1.apply(pa, qa)
                for pb in second.states:
                    for qb in second.states:
                        out2 = t2.apply(pb, qb)
                        if out1 == (pa, qa) and out2 == (pb, qb):
                            continue  # null in both components
                        table.add(
                            _pair_name(pa, pb),
                            _pair_name(qa, qb),
                            _pair_name(out1[0], out2[0]),
                            _pair_name(out1[1], out2[1]),
                            mirror=False,  # all orientations enumerated
                        )

        if first.initial_state is not None and second.initial_state is not None:
            initial = _pair_name(first.initial_state, second.initial_state)
        else:
            initial = None

        super().__init__(
            name=f"({first.name} || {second.name})",
            space=space,
            transitions=table,
            initial_state=initial,
            stability_predicate_factory=self._make_stability_predicate,
            metadata={
                "components": (first.name, second.name),
                "states": first.num_states * second.num_states,
            },
        )

    @property
    def components(self) -> tuple[Protocol, Protocol]:
        return (self._first, self._second)

    def project_counts(self, counts) -> tuple[np.ndarray, np.ndarray]:
        """Marginal per-component count vectors of a composed configuration."""
        counts = np.asarray(counts, dtype=np.int64)
        n1 = self._first.num_states
        n2 = self._second.num_states
        grid = counts.reshape(n1, n2)
        return grid.sum(axis=1), grid.sum(axis=0)

    def _make_stability_predicate(self, n: int):
        pred1 = self._first.stability_predicate(n)
        pred2 = self._second.stability_predicate(n)
        if pred1 is None and pred2 is None:
            return None  # fall back to silence
        n1 = self._first.num_states
        n2 = self._second.num_states

        def stable(counts) -> bool:
            grid = np.asarray(counts, dtype=np.int64).reshape(n1, n2)
            if pred1 is not None and not pred1(grid.sum(axis=1)):
                return False
            if pred2 is not None and not pred2(grid.sum(axis=0)):
                return False
            if pred1 is None or pred2 is None:
                # The component without a predicate must be silent in
                # its marginal dynamics; conservatively require the
                # composition to have no rule that changes it.  Cheap
                # sufficient check: defer to full silence.
                return bool(self.compiled.is_silent(grid.reshape(-1)))
            return True

        return stable


def parallel_compose(first: Protocol, second: Protocol, *, groups_from: int = 1) -> ParallelComposition:
    """Compose two protocols to run in lockstep (product construction)."""
    return ParallelComposition(first, second, groups_from=groups_from)
