"""Algorithm 1 of the paper: the 3k-2 state uniform k-partition protocol.

The protocol divides an anonymous population of ``n >= 3`` agents into
``k`` groups whose sizes differ by at most one.  It is deterministic,
*symmetric*, uses designated initial states, and stabilizes under global
fairness (Theorem 1 of the paper).

State set (Section 3)::

    Q = I + G + M + D
    I = {initial, initial'}          free agents            f = 1
    G = {g1, ..., gk}                group members           f(gi) = i
    M = {m2, ..., m_{k-1}}           chain intermediates     f(mi) = i
    D = {d1, ..., d_{k-2}}           undo tokens             f(di) = 1

Transition rules (numbering follows Algorithm 1; ``ini`` ranges over I
and ``ini_bar`` flips initial <-> initial')::

     1. (initial , initial )  -> (initial', initial')
     2. (initial', initial')  -> (initial , initial )
     3. (d_i, ini)            -> (d_i, ini_bar)
     4. (g_i, ini)            -> (g_i, ini_bar)
     5. (initial, initial')   -> (g1, m2)
     6. (ini, m_i)            -> (g_i, m_{i+1})     2 <= i <= k-2
     7. (ini, m_{k-1})        -> (g_{k-1}, g_k)
     8. (m_i, m_j)            -> (d_{i-1}, d_{j-1}) 2 <= i, j <= k-1
     9. (d_i, g_i)            -> (d_{i-1}, initial) 2 <= i <= k-2
    10. (d_1, g_1)            -> (initial, initial)

Transcription notes
-------------------
* The OCRed paper prints rules 3 and 4 without the overline on the
  output (``(d_i, ini) -> (d_i, ini)``).  Per the prose of Section 3.1
  ("Each agent in state initial (resp., initial') transits to initial'
  (resp., initial) when it interacts with an agent in a state in
  I + D + G ..."), the output must be the *flipped* free state; we
  implement the flip.  Without it rule 5 could never fire from an
  all-``initial'`` population and the protocol would not be correct.
* For ``k = 2`` the sets M and D are empty and rule 5 produces
  ``(g1, g2)`` directly; the paper notes the protocol then coincides
  with the 4-state uniform bipartition protocol of Yasumi et al. [25].

Stable configurations (Lemmas 4-6).  With ``q = n // k`` and
``r = n mod k`` the unique stable count signature is::

    #g_x = q + 1   for x <= r - 1
    #g_x = q       for x >= r
    one agent in initial/initial'   if r == 1
    one agent in m_r                if r >= 2
    no agents in D, no other agents in M or I

For ``r == 1`` the stable configuration is *not silent*: rule 4 keeps
flipping the leftover free agent between initial and initial', but both
states map to group 1, so the partition never changes.  The engines
therefore use :meth:`UniformKPartitionProtocol.stable` rather than
silence detection.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.errors import ProtocolError
from ..core.protocol import Protocol
from ..core.state import StateSpace
from ..core.transitions import TransitionTable

__all__ = ["UniformKPartitionProtocol", "uniform_k_partition", "INITIAL", "INITIAL_PRIME"]

#: Name of the designated initial state.
INITIAL = "initial"
#: Name of the shadow initial state used to break symmetry via rule 5.
INITIAL_PRIME = "initial'"


def _g(i: int) -> str:
    return f"g{i}"


def _m(i: int) -> str:
    return f"m{i}"


def _d(i: int) -> str:
    return f"d{i}"


class UniformKPartitionProtocol(Protocol):
    """The paper's uniform k-partition protocol for a fixed ``k >= 2``.

    Use :func:`uniform_k_partition` (or this constructor) to build one::

        >>> p = uniform_k_partition(3)
        >>> p.num_states            # 3k - 2
        7
        >>> p.is_symmetric
        True
    """

    def __init__(self, k: int) -> None:
        if not isinstance(k, int):
            raise ProtocolError(f"k must be an integer, got {k!r}")
        if k < 2:
            raise ProtocolError(f"uniform k-partition requires k >= 2, got k = {k}")
        self._k = k

        names = [INITIAL, INITIAL_PRIME]
        names += [_g(i) for i in range(1, k + 1)]
        names += [_m(i) for i in range(2, k)]        # m2 .. m_{k-1}
        names += [_d(i) for i in range(1, k - 1)]    # d1 .. d_{k-2}

        groups: dict[str, int] = {INITIAL: 1, INITIAL_PRIME: 1}
        for i in range(1, k + 1):
            groups[_g(i)] = i
        for i in range(2, k):
            groups[_m(i)] = i
        for i in range(1, k - 1):
            groups[_d(i)] = 1

        space = StateSpace(names, groups=groups, num_groups=k)
        table = TransitionTable(space)
        flip = {INITIAL: INITIAL_PRIME, INITIAL_PRIME: INITIAL}

        # Rules 1-2: free agents toggle so that rule 5 can eventually
        # pair an ``initial`` with an ``initial'`` (symmetry breaking
        # without asymmetric transitions).
        table.add(INITIAL, INITIAL, INITIAL_PRIME, INITIAL_PRIME)
        table.add(INITIAL_PRIME, INITIAL_PRIME, INITIAL, INITIAL)

        # Rules 3-4: members of D and G flip the free partner.
        for ini, flipped in flip.items():
            for i in range(1, k - 1):
                table.add(_d(i), ini, _d(i), flipped)
            for i in range(1, k + 1):
                table.add(_g(i), ini, _g(i), flipped)

        # Rule 5: start a grouping chain.  For k = 2 the chain has
        # length two, so the pair becomes (g1, g2) immediately.
        if k == 2:
            table.add(INITIAL, INITIAL_PRIME, _g(1), _g(2))
        else:
            table.add(INITIAL, INITIAL_PRIME, _g(1), _m(2))

            # Rule 6: extend the chain.
            for ini in flip:
                for i in range(2, k - 1):
                    table.add(ini, _m(i), _g(i), _m(i + 1))

            # Rule 7: close the chain.
            for ini in flip:
                table.add(ini, _m(k - 1), _g(k - 1), _g(k))

            # Rule 8: two chains collide; both become undo tokens.
            for i in range(2, k):
                for j in range(i, k):
                    table.add(_m(i), _m(j), _d(i - 1), _d(j - 1))

            # Rules 9-10: undo tokens release one group member per level.
            for i in range(2, k - 1):
                table.add(_d(i), _g(i), _d(i - 1), INITIAL)
            table.add(_d(1), _g(1), INITIAL, INITIAL)

        super().__init__(
            name=f"uniform-{k}-partition",
            space=space,
            transitions=table,
            initial_state=INITIAL,
            stability_predicate_factory=self._make_stability_predicate,
            batch_stability_predicate_factory=self._make_batch_stability_predicate,
            stability_signature_factory=self._make_stability_signature,
            metadata={
                "k": k,
                "paper": "Yasumi et al., IPPS 2018 / IJNC 2019",
                "states": 3 * k - 2,
            },
            require_symmetric=True,
        )

        # Cache index blocks used by the stability test and Lemma-1 checks.
        self._i_idx = (space.index(INITIAL), space.index(INITIAL_PRIME))
        self._g_idx = tuple(space.index(_g(i)) for i in range(1, k + 1))
        self._m_idx = tuple(space.index(_m(i)) for i in range(2, k))
        self._d_idx = tuple(space.index(_d(i)) for i in range(1, k - 1))

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of groups."""
        return self._k

    @property
    def initial_indices(self) -> tuple[int, int]:
        """Indices of (initial, initial')."""
        return self._i_idx

    @property
    def g_indices(self) -> tuple[int, ...]:
        """Indices of g1..gk (``g_indices[i-1]`` is ``g_i``)."""
        return self._g_idx

    @property
    def m_indices(self) -> tuple[int, ...]:
        """Indices of m2..m_{k-1} (``m_indices[i-2]`` is ``m_i``)."""
        return self._m_idx

    @property
    def d_indices(self) -> tuple[int, ...]:
        """Indices of d1..d_{k-2} (``d_indices[i-1]`` is ``d_i``)."""
        return self._d_idx

    @property
    def gk_index(self) -> int:
        """Index of ``g_k`` — the count that certifies grouping progress."""
        return self._g_idx[-1]

    @staticmethod
    def state_count(k: int) -> int:
        """``|Q| = 3k - 2`` (also 4 for k = 2, consistently)."""
        if k < 2:
            raise ProtocolError(f"k-partition requires k >= 2, got {k}")
        return 3 * k - 2

    # ------------------------------------------------------------------
    # Stable signature (Lemmas 4-6)
    # ------------------------------------------------------------------
    def expected_stable_counts(self, n: int) -> dict[str, int]:
        """The unique stable count signature for ``n`` agents.

        For ``r = n mod k == 1`` the leftover free agent may be in
        either ``initial`` or ``initial'``; the returned dict reports it
        under ``initial`` (callers comparing against live counts should
        sum the two free states — :meth:`stable` does).
        """
        if n < 1:
            raise ProtocolError(f"population size must be positive, got {n}")
        k = self._k
        q, r = divmod(n, k)
        expected = {name: 0 for name in self.space.names}
        for x in range(1, k + 1):
            expected[_g(x)] = q + 1 if x <= r - 1 else q
        if r == 1:
            expected[INITIAL] = 1
        elif r >= 2:
            expected[_m(r)] = 1
        return expected

    def expected_group_sizes(self, n: int) -> np.ndarray:
        """Final group sizes: ``r`` groups of size ``q+1``, rest ``q``.

        Groups ``1..r-1`` get a ``g``-member surplus and the group of
        the leftover agent (group 1 if ``r == 1``, group ``r`` via
        ``m_r`` if ``r >= 2``) absorbs the remaining unit.
        """
        k = self._k
        q, r = divmod(n, k)
        sizes = np.full(k, q, dtype=np.int64)
        if r == 1:
            sizes[0] += 1
        elif r >= 2:
            sizes[: r - 1] += 1  # g-surplus groups 1..r-1
            sizes[r - 1] += 1    # the m_r agent maps to group r
        return sizes

    def _make_stability_predicate(self, n: int):
        k = self._k
        q, r = divmod(n, k)
        gk = self._g_idx[-1]
        g_idx = self._g_idx
        m_idx = self._m_idx
        d_idx = self._d_idx
        i0, i1 = self._i_idx
        exp_g = [q + 1 if x <= r - 1 else q for x in range(1, k + 1)]
        exp_ini = 1 if r == 1 else 0
        exp_m = [0] * len(m_idx)
        if r >= 2:
            exp_m[r - 2] = 1

        def stable(counts: Sequence[int]) -> bool:
            # gk first: it is the last count to reach its target, so
            # this cheap check rejects almost every non-stable call.
            if counts[gk] != q:
                return False
            if counts[i0] + counts[i1] != exp_ini:
                return False
            for idx, want in zip(g_idx, exp_g):
                if counts[idx] != want:
                    return False
            for idx, want in zip(m_idx, exp_m):
                if counts[idx] != want:
                    return False
            for idx in d_idx:
                if counts[idx] != 0:
                    return False
            return True

        return stable

    def _make_batch_stability_predicate(self, n: int):
        """Vectorized form of :meth:`_make_stability_predicate`.

        Stability is a pure count-signature test, so the batched version
        compares all rows of a ``(B, S)`` matrix against the expected
        signature in three fused comparisons (the two free states are
        interchangeable and checked as a sum).
        """
        k = self._k
        q, r = divmod(n, k)
        gk = self._g_idx[-1]
        i0, i1 = self._i_idx
        exp_ini = 1 if r == 1 else 0
        exact_idx = np.fromiter(
            self._g_idx + self._m_idx + self._d_idx, dtype=np.intp
        )
        want = np.zeros(len(exact_idx), dtype=np.int64)
        want[:k] = [q + 1 if x <= r - 1 else q for x in range(1, k + 1)]
        if r >= 2:
            want[k + r - 2] = 1  # m_r, at offset r-2 within the m block

        def stable(count_matrix: np.ndarray) -> np.ndarray:
            count_matrix = np.asarray(count_matrix)
            # gk first, as in the scalar predicate: it is the last count
            # to reach its target, so most steps return all-False after
            # one cheap column comparison.
            ok = count_matrix[:, gk] == q
            if not ok.any():
                return ok
            cand = np.flatnonzero(ok)
            sub = count_matrix[cand]
            good = sub[:, i0] + sub[:, i1] == exp_ini
            good &= (sub[:, exact_idx] == want).all(axis=1)
            ok[cand] = good
            return ok

        return stable

    def _make_stability_signature(self, n: int):
        """Declarative (count-sum) form of :meth:`_make_stability_predicate`.

        Same constraints, same order — ``#g_k == q`` leads so the
        kernels get the same cheap near-always reject the scalar
        predicate has.  ``g_k`` appears again inside the exact-G block;
        the redundancy is harmless (signatures are conjunctions).
        """
        from ..core.protocol import StabilitySignature

        k = self._k
        q, r = divmod(n, k)
        groups: list[tuple[tuple[int, ...], int]] = [((self._g_idx[-1],), q)]
        groups.append((self._i_idx, 1 if r == 1 else 0))
        for x, idx in enumerate(self._g_idx, start=1):
            groups.append(((idx,), q + 1 if x <= r - 1 else q))
        for off, idx in enumerate(self._m_idx):
            groups.append(((idx,), 1 if r >= 2 and off == r - 2 else 0))
        for idx in self._d_idx:
            groups.append(((idx,), 0))
        return StabilitySignature(tuple(groups))

    def stable(self, counts: Sequence[int] | np.ndarray, n: int | None = None) -> bool:
        """True when ``counts`` is the stable signature for ``n`` agents."""
        counts = self._validated_counts(counts)
        if n is None:
            n = int(counts.sum())
        if n < 1:
            raise ProtocolError(f"population size must be positive, got {n}")
        return self._make_stability_predicate(n)(counts)

    # ------------------------------------------------------------------
    # Lemma 1
    # ------------------------------------------------------------------
    def _validated_counts(self, counts: Sequence[int] | np.ndarray) -> np.ndarray:
        """Normalize a count vector, rejecting malformed input clearly.

        The Lemma-1 and stability checks are invoked from invariant
        monitors on live engine state; a shape or sign error must name
        the problem instead of surfacing as a bare ``IndexError`` deep
        in an index block (which for ``k = 2``, where ``M`` and ``D``
        are empty, used to point at the wrong sum entirely).
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.num_states,):
            raise ProtocolError(
                f"counts vector has shape {counts.shape}, expected "
                f"({self.num_states},) for {self.name}"
            )
        if (counts < 0).any():
            raise ProtocolError(
                f"counts must be non-negative, got {counts.tolist()}"
            )
        return counts

    def lemma1_residuals(self, counts: Sequence[int] | np.ndarray) -> np.ndarray:
        """Residuals of the Lemma-1 invariant, one per ``x`` in 1..k.

        Lemma 1:  ``#g_x = sum_{p > x} #m_p + sum_{q >= x} #d_q + #g_k``
        for every reachable configuration.  Returns the vector of
        left-minus-right differences; all-zero iff the invariant holds.
        For ``k = 2`` (and the ``D`` block for ``k = 3``) the ``M``/``D``
        index blocks are empty and the corresponding sums are zero, so
        the invariant degenerates to ``#g_1 = #g_2``.
        """
        counts = self._validated_counts(counts)
        k = self._k
        g = counts[list(self._g_idx)]
        m = counts[list(self._m_idx)] if self._m_idx else np.zeros(0, dtype=np.int64)
        d = counts[list(self._d_idx)] if self._d_idx else np.zeros(0, dtype=np.int64)
        gk = g[-1]
        res = np.empty(k, dtype=np.int64)
        for x in range(1, k + 1):
            # m indices cover m_2..m_{k-1}: entries with p > x are m[x-1:].
            m_tail = int(m[x - 1:].sum()) if m.size else 0
            # d indices cover d_1..d_{k-2}: entries with q >= x are d[x-1:].
            d_tail = int(d[x - 1:].sum()) if d.size else 0
            res[x - 1] = int(g[x - 1]) - (m_tail + d_tail + int(gk))
        return res

    def satisfies_lemma1(self, counts: Sequence[int] | np.ndarray) -> bool:
        """Check the Lemma-1 invariant in one call."""
        return not self.lemma1_residuals(counts).any()


def uniform_k_partition(k: int) -> UniformKPartitionProtocol:
    """Build the paper's uniform k-partition protocol (Algorithm 1)."""
    return UniformKPartitionProtocol(k)
