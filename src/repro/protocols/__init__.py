"""Protocol implementations: the paper's uniform k-partition protocol,
its baselines, the R-generalized extension, and classic building blocks."""

from .approx_partition import ApproximatePartitionProtocol, approximate_k_partition
from .bipartition import UniformBipartitionProtocol, uniform_bipartition
from .composition import ParallelComposition, parallel_compose
from .graph_bipartition import GraphBipartitionProtocol, graph_bipartition
from .kpartition import (
    INITIAL,
    INITIAL_PRIME,
    UniformKPartitionProtocol,
    uniform_k_partition,
)
from .leader_election import FOLLOWER, LEADER, LeaderElectionProtocol, leader_election
from .majority import ApproximateMajorityProtocol, approximate_majority
from .registry import available_protocols, build_protocol, register_protocol
from .repeated_bipartition import RepeatedBipartitionProtocol, repeated_bipartition
from .rgeneralized import RGeneralizedPartitionProtocol, r_generalized_partition
from .weak_kpartition import FREE, WeakKPartitionProtocol, weak_k_partition

__all__ = [
    "UniformKPartitionProtocol",
    "uniform_k_partition",
    "INITIAL",
    "INITIAL_PRIME",
    "UniformBipartitionProtocol",
    "uniform_bipartition",
    "ParallelComposition",
    "parallel_compose",
    "RepeatedBipartitionProtocol",
    "repeated_bipartition",
    "ApproximatePartitionProtocol",
    "approximate_k_partition",
    "RGeneralizedPartitionProtocol",
    "r_generalized_partition",
    "LeaderElectionProtocol",
    "leader_election",
    "LEADER",
    "FOLLOWER",
    "ApproximateMajorityProtocol",
    "approximate_majority",
    "WeakKPartitionProtocol",
    "weak_k_partition",
    "FREE",
    "GraphBipartitionProtocol",
    "graph_bipartition",
    "available_protocols",
    "build_protocol",
    "register_protocol",
]
