"""Repeated bipartition: the prior-work construction for ``k = 2^h``.

The paper's introduction observes that running the uniform bipartition
protocol [25] ``h`` times yields a uniform k-partition protocol for
``k = 2^h`` — and that this strategy does not extend to other ``k``.
This module implements that hierarchical construction so the claim can
be exercised and compared against Algorithm 1.

Each agent carries a stack of bipartition sub-states, one per level.
Commits (the symmetry-breaking ``(initial, initial') -> (g1, g2)``
step) only happen between two free agents of the *same* node — agents
whose decided paths agree; decided levels are final (bipartition ``g``
states never change), so the composition is safe even though agents
cannot detect when a level has stabilized.

Flavour flips, by contrast, are deliberately *global*: a free agent's
``initial <-> initial'`` toggle fires on contact with ANY agent that is
not a free agent of the same node.  Restricting flips to the agent's
own subtree — the obvious composition — is wrong: a node whose final
share is exactly two agents would have no third party to desynchronize
the pair, and two same-flavour agents flip in lockstep forever (the
sub-population violates the bipartition protocol's own ``n >= 3``
assumption; ``h = 2, n = 4`` would never stabilize).  Global flips are
group-preserving, cost no extra states, and restore convergence for
every ``n >= 3``.

Reachable composite states: a decided prefix of length ``j - 1`` (a
binary path) followed by ``initial``/``initial'``, or a fully decided
path.  That is ``sum_j 2^(j-1) * 2 + 2^h = 3 * 2^h - 2`` states — equal
to Algorithm 1's ``3k - 2``, which makes for a fair space comparison.

Uniformity caveat (part of why the paper needed a new protocol): each
level may strand one undecided leftover agent per subtree, so for
general ``n`` the group sizes can spread by up to ``h`` (not 1).  When
``2^h`` divides ``n`` the partition is exactly uniform.  The test suite
checks both facts.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.errors import ProtocolError
from ..core.protocol import Protocol
from ..core.state import StateSpace
from ..core.transitions import TransitionTable
from .kpartition import INITIAL, INITIAL_PRIME

__all__ = ["RepeatedBipartitionProtocol", "repeated_bipartition"]

_FLIP = {INITIAL: INITIAL_PRIME, INITIAL_PRIME: INITIAL}


def _state_name(path: tuple[int, ...], flavour: str | None) -> str:
    """Name a composite state: decided path bits + optional free flavour."""
    prefix = "".join(str(b) for b in path)
    if flavour is None:
        return f"leaf:{prefix}"
    return f"node:{prefix}:{flavour}"


def _group_of_path(path: tuple[int, ...], h: int) -> int:
    """Group index (1-based): path bits, undecided levels read as 0."""
    g = 0
    for b in path:
        g = (g << 1) | (b - 1)
    g <<= h - len(path)
    return g + 1


class RepeatedBipartitionProtocol(Protocol):
    """Hierarchical h-fold bipartition for ``k = 2^h`` groups."""

    def __init__(self, h: int) -> None:
        if not isinstance(h, int) or h < 1:
            raise ProtocolError(f"repeated bipartition requires integer h >= 1, got {h!r}")
        self._h = h
        k = 2**h

        # Enumerate reachable composite states level by level.
        names: list[str] = []
        groups: dict[str, int] = {}
        paths_by_len: list[list[tuple[int, ...]]] = [[()]]
        for j in range(1, h + 1):
            paths_by_len.append(
                [p + (b,) for p in paths_by_len[j - 1] for b in (1, 2)]
            )
        for j in range(0, h):  # undecided at level j+1, decided prefix length j
            for path in paths_by_len[j]:
                for flavour in (INITIAL, INITIAL_PRIME):
                    name = _state_name(path, flavour)
                    names.append(name)
                    groups[name] = _group_of_path(path, h)
        for path in paths_by_len[h]:
            name = _state_name(path, None)
            names.append(name)
            groups[name] = _group_of_path(path, h)

        space = StateSpace(names, groups=groups, num_groups=k)
        table = TransitionTable(space)

        # Bipartition dynamics at the first undecided level of each node.
        # Free-state bookkeeping for the flip rules below.
        node_free: list[tuple[str, str]] = []  # (initial, initial') per node
        for j in range(0, h):
            for path in paths_by_len[j]:
                ini = _state_name(path, INITIAL)
                ini_p = _state_name(path, INITIAL_PRIME)
                node_free.append((ini, ini_p))
                child = [path + (1,), path + (2,)]
                if j + 1 < h:
                    committed = [_state_name(c, INITIAL) for c in child]
                else:
                    committed = [_state_name(c, None) for c in child]
                table.add(ini, ini, ini_p, ini_p)
                table.add(ini_p, ini_p, ini, ini)
                table.add(ini, ini_p, committed[0], committed[1])

        # Flip rules: a free agent's flavour toggles on contact with ANY
        # agent that is not a free agent of the same node (those pairs
        # are the bipartition rules above).  Restricting flips to the
        # agent's own subtree — the obvious composition — is WRONG: a
        # node whose final share is exactly two agents would have no
        # third party to desynchronize the pair, and two same-flavour
        # agents flip in lockstep forever (the sub-population violates
        # the bipartition protocol's own n >= 3 assumption).  Letting
        # any outside agent flip is group-preserving and safe, and
        # restores convergence for every n >= 3.
        flip = {}
        for ini, ini_p in node_free:
            flip[ini] = ini_p
            flip[ini_p] = ini
        free_node_of = {}
        for idx, (ini, ini_p) in enumerate(node_free):
            free_node_of[ini] = idx
            free_node_of[ini_p] = idx
        for a_i, a in enumerate(names):
            for b in names[a_i:]:
                a_free = a in free_node_of
                b_free = b in free_node_of
                if a_free and b_free:
                    if free_node_of[a] == free_node_of[b]:
                        continue  # same node (incl. a == b): rules above
                    table.add(a, b, flip[a], flip[b])
                elif a_free and not b_free:
                    table.add(b, a, b, flip[a])
                elif b_free and not a_free:
                    table.add(a, b, a, flip[b])

        super().__init__(
            name=f"repeated-bipartition-h{h}",
            space=space,
            transitions=table,
            initial_state=_state_name((), INITIAL),
            stability_predicate_factory=self._make_stability_predicate,
            metadata={"h": h, "k": k, "states": 3 * k - 2},
            require_symmetric=True,
        )

        # Node -> (initial index, initial' index), for the stability test.
        self._node_free_indices: list[tuple[int, int]] = []
        for j in range(0, h):
            for path in paths_by_len[j]:
                self._node_free_indices.append(
                    (
                        space.index(_state_name(path, INITIAL)),
                        space.index(_state_name(path, INITIAL_PRIME)),
                    )
                )

    @property
    def h(self) -> int:
        """Number of bipartition levels."""
        return self._h

    @property
    def k(self) -> int:
        """Number of groups, ``2^h``."""
        return 2**self._h

    def _make_stability_predicate(self, n: int):
        node_free = self._node_free_indices

        def stable(counts: Sequence[int]) -> bool:
            # Stable iff every node retains at most one undecided agent:
            # commits need two free agents at the same node, and free
            # agents only arrive via a parent commit, so <=1 everywhere
            # means group membership is frozen (flips preserve groups).
            for i0, i1 in node_free:
                if counts[i0] + counts[i1] > 1:
                    return False
            return True

        return stable

    def group_size_spread(self, counts: Sequence[int] | np.ndarray) -> int:
        """Max minus min group size — 0 or 1 means uniform."""
        sizes = self.group_sizes(np.asarray(counts, dtype=np.int64))
        return int(sizes.max() - sizes.min())


def repeated_bipartition(h: int) -> RepeatedBipartitionProtocol:
    """Build the h-level repeated bipartition protocol (``k = 2^h``)."""
    return RepeatedBipartitionProtocol(h)
