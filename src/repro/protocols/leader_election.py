"""Minimal leader election — a classic building-block protocol.

Included because the paper positions uniform k-partition among the
standard population-protocol building blocks (leader election,
counting, majority); the examples use it to show the framework is not
specific to partitioning.

Two states: ``L`` (leader candidate) and ``F`` (follower).  All agents
start as candidates; when two candidates meet, one survives::

    (L, L) -> (L, F)

The rule is asymmetric — leader election from identical states is
impossible for symmetric protocols, which is exactly why the paper's
symmetric protocol needs the ``initial/initial'`` toggle instead of a
leader.  The number of leaders is non-increasing and reaches one under
any fairness assumption; the stable configurations are the silent ones.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.protocol import Protocol
from ..core.state import StateSpace
from ..core.transitions import TransitionTable

__all__ = ["LeaderElectionProtocol", "leader_election", "LEADER", "FOLLOWER"]

LEADER = "L"
FOLLOWER = "F"


class LeaderElectionProtocol(Protocol):
    """Two-state leader election with designated initial state ``L``."""

    def __init__(self) -> None:
        space = StateSpace([LEADER, FOLLOWER])
        table = TransitionTable(space)
        table.add(LEADER, LEADER, LEADER, FOLLOWER)
        super().__init__(
            name="leader-election",
            space=space,
            transitions=table,
            initial_state=LEADER,
            stability_predicate_factory=self._make_stability_predicate,
            stability_signature_factory=self._make_stability_signature,
            metadata={"states": 2},
        )
        self._leader_idx = space.index(LEADER)

    @property
    def leader_index(self) -> int:
        return self._leader_idx

    def _make_stability_predicate(self, n: int):
        leader = self._leader_idx

        def stable(counts: Sequence[int]) -> bool:
            return counts[leader] == 1

        return stable

    def _make_stability_signature(self, n: int):
        """Count-sum form of the predicate: exactly one leader."""
        from ..core.protocol import StabilitySignature

        return StabilitySignature((((self._leader_idx,), 1),))

    def num_leaders(self, counts: Sequence[int]) -> int:
        return int(counts[self._leader_idx])


def leader_election() -> LeaderElectionProtocol:
    """Build the 2-state leader election protocol."""
    return LeaderElectionProtocol()
