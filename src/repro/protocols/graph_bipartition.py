"""Uniform bipartition on *arbitrary* connected interaction graphs.

The source paper (and the 4-state protocol of [25] it builds on) assume
the complete interaction graph: any two agents may meet.  The follow-up
work (arXiv:2011.08366, same group) drops that assumption — the
scheduler may only pick edges of an arbitrary connected graph.  The
static 4-state protocol breaks immediately there: on a star graph two
``initial`` leaves are never adjacent, so the partner-commit rule
``(initial, initial') -> (g1, g2)`` can starve with two free agents
parked on non-adjacent leaves forever (a genuine deadlock, not just
slowness — ``tests/protocols/test_graph_bipartition.py`` pins it).

The repair implemented here is *token mobility*, the standard device in
the arbitrary-graph literature: committed agents let free "tokens" pass
through them, so any two frees eventually become adjacent along a path
of committed agents.  When a committed agent meets a free one, the pair
**swaps positions** (the committed state moves across the edge); a hop
through a ``g1`` *resets* the token's flavour to ``initial'`` whatever
it was, while a hop through a ``g2`` preserves it::

    (initial , initial )  -> (initial', initial')
    (initial', initial')  -> (initial , initial )
    (initial , initial')  -> (g1, g2)
    (g1, f)               -> (initial', g1)   f in {initial, initial'}
    (g2, f)               -> (f, g2)

The flavour treatment along a hop is the load-bearing design choice,
and it must be **many-to-one**.  Any *invertible* per-hop flavour map
(always flip, never flip, or flip through exactly one committed state)
admits a conserved mod-2 quantity on trees and bipartite graphs —
e.g. with flip-on-every-hop, ``(side + flavour)`` per token is
conserved on a bipartite graph, and with flip-through-``g1`` only,
``(flavour + #g1 on the token's side of the edge)`` is conserved on a
tree — and the partner-commit rule is only enabled in one parity
class, so half the reachable configurations can never finish (both
variants demonstrably livelock on stars and paths).  The reset rule is
not invertible, so no such parity exists; exhaustive position-level
model checking over paths, stars, cycles, random trees and lollipop
graphs confirms that from *every* reachable configuration a stable one
stays reachable, which is exactly what global fairness converts into
convergence.  ``tests/protocols/test_graph_bipartition.py`` pins the
previously-deadlocking scenarios.

All rules are symmetric (mirror-closed).  Every rule conserves
``#g1 - #g2`` (the partner rule mints one of each; the swap rules move
a committed state without changing it), so the two groups are balanced
at *every* reachable configuration — the graph analogue of the paper's
Lemma 1, and the invariant the conformance pack checks.  Free parity
is likewise conserved, so exactly ``n mod 2`` free agents remain at
stabilization.

Under global fairness on any connected graph the protocol stabilizes:
while two frees exist somewhere, there is a reachable configuration in
which they are adjacent (swap one along a path), where the partner rule
fires and permanently retires both.  For odd ``n`` the leftover free
keeps hopping — the terminal configurations are *stable but not
silent*, exactly like the source paper's protocols, which is why the
stability predicate below (not silence) is the convergence test.  For
``n = 2`` the flavour-toggle livelock of the complete-graph protocol is
inherited unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.errors import ProtocolError
from ..core.protocol import Protocol, StabilitySignature
from ..core.state import StateSpace
from ..core.transitions import TransitionTable
from .kpartition import INITIAL, INITIAL_PRIME

__all__ = ["GraphBipartitionProtocol", "graph_bipartition"]


class GraphBipartitionProtocol(Protocol):
    """4-state uniform bipartition with token mobility for arbitrary graphs."""

    def __init__(self) -> None:
        names = [INITIAL, INITIAL_PRIME, "g1", "g2"]
        groups = {INITIAL: 1, INITIAL_PRIME: 1, "g1": 1, "g2": 2}
        space = StateSpace(names, groups=groups, num_groups=2)
        table = TransitionTable(space)

        table.add(INITIAL, INITIAL, INITIAL_PRIME, INITIAL_PRIME)
        table.add(INITIAL_PRIME, INITIAL_PRIME, INITIAL, INITIAL)
        table.add(INITIAL, INITIAL_PRIME, "g1", "g2")
        # Mobility: the committed state crosses the edge and the free
        # token takes its place.  A g1-hop RESETS the token's flavour to
        # initial' whatever it was; a g2-hop preserves it.  The g1 rule
        # must be many-to-one — any invertible flavour map admits a
        # conserved parity that deadlocks trees (module docstring).
        table.add("g1", INITIAL, INITIAL_PRIME, "g1")
        table.add("g1", INITIAL_PRIME, INITIAL_PRIME, "g1")
        table.add("g2", INITIAL, INITIAL, "g2")
        table.add("g2", INITIAL_PRIME, INITIAL_PRIME, "g2")

        super().__init__(
            name="graph-bipartition",
            space=space,
            transitions=table,
            initial_state=INITIAL,
            stability_predicate_factory=self._make_stability_predicate,
            batch_stability_predicate_factory=self._make_batch_predicate,
            stability_signature_factory=self._make_stability_signature,
            metadata={
                "k": 2,
                "states": 4,
                "fairness": "global",
                "topology": "arbitrary connected graph",
                "paper": "Yasumi et al., arXiv:2011.08366 (mobility variant)",
            },
            require_symmetric=True,
        )
        self._g_idx = (space.index("g1"), space.index("g2"))
        self._i_idx = (space.index(INITIAL), space.index(INITIAL_PRIME))

    # ------------------------------------------------------------------
    # Stability (count form; terminal configurations with odd n are
    # stable but not silent, so silence is the wrong test here)
    # ------------------------------------------------------------------
    def _make_stability_predicate(self, n: int):
        half, r = divmod(n, 2)
        g1, g2 = self._g_idx
        i0, i1 = self._i_idx

        def stable(counts: Sequence[int]) -> bool:
            return (
                counts[g1] == half
                and counts[g2] == half
                and counts[i0] + counts[i1] == r
            )

        return stable

    def _make_batch_predicate(self, n: int):
        half, _ = divmod(n, 2)
        g1, g2 = self._g_idx

        def stable(count_matrix: np.ndarray) -> np.ndarray:
            return (count_matrix[:, g1] == half) & (count_matrix[:, g2] == half)

        return stable

    def _make_stability_signature(self, n: int) -> StabilitySignature:
        half, r = divmod(n, 2)
        g1, g2 = self._g_idx
        return StabilitySignature(
            (((g1,), half), ((g2,), half), (self._i_idx, r))
        )

    # ------------------------------------------------------------------
    # Conservation laws (the graph analogue of Lemma 1)
    # ------------------------------------------------------------------
    def balance_residual(self, counts: Sequence[int] | np.ndarray) -> int:
        """``#g1 - #g2`` — zero at every reachable configuration."""
        counts = np.asarray(counts, dtype=np.int64)
        g1, g2 = self._g_idx
        return int(counts[g1] - counts[g2])

    def free_count(self, counts: Sequence[int] | np.ndarray) -> int:
        """Number of uncommitted agents; its parity is conserved."""
        counts = np.asarray(counts, dtype=np.int64)
        i0, i1 = self._i_idx
        return int(counts[i0] + counts[i1])

    def expected_group_sizes(self, n: int) -> np.ndarray:
        """Final sizes: ``ceil(n/2)`` in group 1, ``floor(n/2)`` in group 2."""
        if n < 1:
            raise ProtocolError(f"population size must be positive, got {n}")
        half, r = divmod(n, 2)
        return np.asarray([half + r, half], dtype=np.int64)


def graph_bipartition() -> GraphBipartitionProtocol:
    """Build the mobility bipartition protocol for arbitrary graphs."""
    return GraphBipartitionProtocol()
