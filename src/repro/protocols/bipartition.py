"""The 4-state uniform bipartition protocol of Yasumi et al. [25].

This is the prior work the paper builds on: a symmetric protocol with
designated initial states that splits a population into two groups of
(almost) equal size under global fairness, using the provably minimal
four states.  Section 4 of the k-partition paper notes that Algorithm 1
with ``k = 2`` *is* this protocol; the test suite verifies that claim by
comparing the two transition tables.

States: ``initial``, ``initial'`` (free, group 1), ``g1``, ``g2``.
Rules::

    (initial , initial )  -> (initial', initial')
    (initial', initial')  -> (initial , initial )
    (initial , initial')  -> (g1, g2)
    (g_i, ini)            -> (g_i, ini_bar)

Free agents toggle between the two initial flavours; when an
``initial`` meets an ``initial'`` the pair commits to opposite groups
simultaneously, which is the "partner balance" mechanism the paper's
introduction explains cannot be extended beyond k = 2 by a single
interaction.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.errors import ProtocolError
from ..core.protocol import Protocol
from ..core.state import StateSpace
from ..core.transitions import TransitionTable
from .kpartition import INITIAL, INITIAL_PRIME

__all__ = ["UniformBipartitionProtocol", "uniform_bipartition"]


class UniformBipartitionProtocol(Protocol):
    """The 4-state symmetric uniform bipartition protocol."""

    def __init__(self) -> None:
        names = [INITIAL, INITIAL_PRIME, "g1", "g2"]
        groups = {INITIAL: 1, INITIAL_PRIME: 1, "g1": 1, "g2": 2}
        space = StateSpace(names, groups=groups, num_groups=2)
        table = TransitionTable(space)

        table.add(INITIAL, INITIAL, INITIAL_PRIME, INITIAL_PRIME)
        table.add(INITIAL_PRIME, INITIAL_PRIME, INITIAL, INITIAL)
        table.add(INITIAL, INITIAL_PRIME, "g1", "g2")
        for g in ("g1", "g2"):
            table.add(g, INITIAL, g, INITIAL_PRIME)
            table.add(g, INITIAL_PRIME, g, INITIAL)

        super().__init__(
            name="uniform-bipartition",
            space=space,
            transitions=table,
            initial_state=INITIAL,
            stability_predicate_factory=self._make_stability_predicate,
            stability_signature_factory=self._make_stability_signature,
            metadata={"k": 2, "paper": "Yasumi et al., OPODIS 2017 [25]", "states": 4},
            require_symmetric=True,
        )
        self._g_idx = (space.index("g1"), space.index("g2"))
        self._i_idx = (space.index(INITIAL), space.index(INITIAL_PRIME))

    def _make_stability_predicate(self, n: int):
        half, r = divmod(n, 2)
        g1, g2 = self._g_idx
        i0, i1 = self._i_idx

        def stable(counts: Sequence[int]) -> bool:
            return (
                counts[g1] == half
                and counts[g2] == half
                and counts[i0] + counts[i1] == r
            )

        return stable

    def _make_stability_signature(self, n: int):
        """Count-sum form of the predicate for the compiled kernel tiers."""
        from ..core.protocol import StabilitySignature

        half, r = divmod(n, 2)
        g1, g2 = self._g_idx
        return StabilitySignature(
            (((g1,), half), ((g2,), half), (self._i_idx, r))
        )

    def expected_group_sizes(self, n: int) -> np.ndarray:
        """Final sizes: ``ceil(n/2)`` in group 1, ``floor(n/2)`` in group 2."""
        if n < 1:
            raise ProtocolError(f"population size must be positive, got {n}")
        half, r = divmod(n, 2)
        return np.asarray([half + r, half], dtype=np.int64)


def uniform_bipartition() -> UniformBipartitionProtocol:
    """Build the 4-state uniform bipartition protocol of [25]."""
    return UniformBipartitionProtocol()
