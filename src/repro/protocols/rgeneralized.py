"""R-generalized partition — the follow-up extension the paper cites.

After the conference version, Umino, Kitamura and Izumi [24] extended
uniform k-partition to the *R-generalized partition problem*: divide
the population into ``k`` groups whose sizes follow a given integer
ratio ``R = (r_1 : r_2 : ... : r_k)``.

The construction implemented here is the natural reduction the paper's
machinery suggests: run the uniform ``W``-partition protocol with
``W = r_1 + ... + r_k`` *slots* and relabel the group map so that the
first ``r_1`` slots feed group 1, the next ``r_2`` feed group 2, and so
on.  Every slot stabilizes to ``floor(n/W)`` or ``floor(n/W) + 1``
agents (Theorem 1), so group ``i`` ends with ``r_i * floor(n/W)`` up to
``r_i * (floor(n/W) + 1)`` agents — i.e. sizes proportional to ``R``
with per-group error at most ``r_i``.  With ``W | n`` the ratio is
exact.  State complexity is ``3W - 2``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.errors import ProtocolError
from ..core.protocol import Protocol
from ..core.transitions import TransitionTable
from .kpartition import UniformKPartitionProtocol

__all__ = ["RGeneralizedPartitionProtocol", "r_generalized_partition"]


class RGeneralizedPartitionProtocol(Protocol):
    """Partition into ``k`` groups with sizes in ratio ``R``.

    Parameters
    ----------
    ratio:
        Positive integers ``(r_1, ..., r_k)``; group ``i`` should
        receive a ``r_i / sum(R)`` share of the population.
    """

    def __init__(self, ratio: Sequence[int]) -> None:
        ratio = tuple(int(r) for r in ratio)
        if len(ratio) < 2:
            raise ProtocolError("ratio must list at least two groups")
        if any(r < 1 for r in ratio):
            raise ProtocolError(f"ratio entries must be positive, got {ratio}")
        W = sum(ratio)
        if W < 2:
            raise ProtocolError("total ratio weight must be at least 2")
        self._ratio = ratio
        self._W = W

        # Slot x (1..W) belongs to the group whose cumulative range
        # covers x.
        slot_group = np.empty(W + 1, dtype=np.int64)  # 1-based
        g = 1
        upper = ratio[0]
        for x in range(1, W + 1):
            while x > upper:
                g += 1
                upper += ratio[g - 1]
            slot_group[x] = g

        inner = UniformKPartitionProtocol(W)
        self._inner = inner

        # Same states and rules as uniform W-partition; only f changes.
        groups = {}
        for name in inner.space.names:
            slot = inner.space.group_of(name)
            groups[name] = int(slot_group[slot])
        space = inner.space.with_groups(groups, num_groups=len(ratio))
        table = TransitionTable(space)
        for t in inner.transitions:
            table.add(t.p, t.q, t.p2, t.q2, mirror=False)

        super().__init__(
            name=f"r-generalized-partition-{':'.join(map(str, ratio))}",
            space=space,
            transitions=table,
            initial_state=inner.initial_state,
            stability_predicate_factory=inner._make_stability_predicate,
            metadata={
                "ratio": ratio,
                "W": W,
                "k": len(ratio),
                "paper": "Umino, Kitamura, Izumi, BDA 2018 [24]",
                "states": 3 * W - 2,
            },
        )

    @property
    def ratio(self) -> tuple[int, ...]:
        return self._ratio

    @property
    def k(self) -> int:
        return len(self._ratio)

    @property
    def total_weight(self) -> int:
        """``W = sum(ratio)`` — the number of underlying slots."""
        return self._W

    @property
    def inner(self) -> UniformKPartitionProtocol:
        """The underlying uniform W-partition protocol."""
        return self._inner

    def expected_group_sizes(self, n: int) -> np.ndarray:
        """Final group sizes implied by the slot-level stable signature."""
        slot_sizes = self._inner.expected_group_sizes(n)
        sizes = np.zeros(len(self._ratio), dtype=np.int64)
        start = 0
        for i, r in enumerate(self._ratio):
            sizes[i] = int(slot_sizes[start : start + r].sum())
            start += r
        return sizes

    def max_ratio_error(self, n: int) -> float:
        """Largest deviation ``|size_i - n * r_i / W|`` at stability."""
        sizes = self.expected_group_sizes(n)
        targets = np.asarray(self._ratio, dtype=np.float64) * n / self._W
        return float(np.abs(sizes - targets).max())


def r_generalized_partition(ratio: Sequence[int]) -> RGeneralizedPartitionProtocol:
    """Build the R-generalized partition protocol for an integer ratio."""
    return RGeneralizedPartitionProtocol(ratio)
