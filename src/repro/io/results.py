"""Typed result tables with CSV/JSON/columnar persistence.

Every experiment produces an :class:`ResultTable`: a named collection
of records (plain dicts with scalar values) plus the parameters that
generated them.  Since the columnar refactor the table is a *thin
view* over a pluggable backend — either the classic in-memory row
list, or an on-disk :class:`~repro.io.columnar.ColumnStore` shard
directory that is materialized lazily on first row access.  The
public API (`append` / `where` / `column` / `write_csv` /
`write_json` / :func:`load_table`) is unchanged either way.

Serialization formats:

* **JSON** — rows + parameter manifest, lossless, whole-file.
* **CSV** — header in first-seen column order.  Writing is
  round-trip-safe: ambiguous string cells (text that type inference
  would misread, like ``"007"`` or ``"True"``, and the empty string)
  are wrapped in literal quote characters, which :meth:`from_csv`
  unwraps back to the exact string.  Unwrapped cells fall back to
  ``int`` / ``float`` / ``bool`` / ``None`` inference, which also
  keeps CSVs written before the quoting scheme loadable.
* **Columnar** — a shard directory for out-of-core tables; see
  :mod:`repro.io.columnar` and ``docs/results.md``.

:func:`load_table` prefers the lossless sibling when a CSV path is
given and recognizes columnar directories transparently.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from collections.abc import Iterable, Mapping

from .columnar import ColumnStore, ShardWriter, is_column_store

__all__ = ["ResultTable", "load_table"]

_SCALARS = (str, int, float, bool, type(None))


def _check_record(record: Mapping[str, object]) -> dict[str, object]:
    clean: dict[str, object] = {}
    for key, value in record.items():
        if not isinstance(key, str):
            raise TypeError(f"record keys must be strings, got {key!r}")
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"record values must be scalars; {key!r} has {type(value).__name__}"
            )
        clean[key] = value
    return clean


class _MemoryBackend:
    """The classic backing store: a plain list of row dicts."""

    kind = "memory"

    def __init__(self, rows: list[dict[str, object]] | None = None) -> None:
        self._rows = rows if rows is not None else []

    def rows(self) -> list[dict[str, object]]:
        return self._rows


class _ColumnarBackend:
    """Lazy view over an on-disk shard directory.

    Rows are materialized (and cached) only when something actually
    iterates them; metadata and streaming aggregation go through
    :attr:`store` without ever loading the table.
    """

    kind = "columnar"

    def __init__(self, store: ColumnStore) -> None:
        self.store = store
        self._rows: list[dict[str, object]] | None = None

    def rows(self) -> list[dict[str, object]]:
        if self._rows is None:
            self._rows = list(self.store.iter_rows())
        return self._rows


class ResultTable:
    """An experiment's tabular output plus its provenance manifest."""

    __slots__ = ("name", "params", "_backend")

    def __init__(
        self,
        name: str,
        params: dict[str, object] | None = None,
        rows: list[dict[str, object]] | None = None,
    ) -> None:
        self.name = name
        self.params = params if params is not None else {}
        self._backend: _MemoryBackend | _ColumnarBackend = _MemoryBackend(rows)

    @property
    def rows(self) -> list[dict[str, object]]:
        """The row list (materialized on demand for columnar tables)."""
        return self._backend.rows()

    @rows.setter
    def rows(self, value: list[dict[str, object]]) -> None:
        self._backend = _MemoryBackend(value)

    @property
    def backend(self) -> str:
        """``"memory"`` or ``"columnar"`` — which store backs the view."""
        return self._backend.kind

    @property
    def store(self) -> ColumnStore | None:
        """The underlying :class:`ColumnStore` for columnar tables."""
        backend = self._backend
        return backend.store if isinstance(backend, _ColumnarBackend) else None

    def append(self, **record: object) -> None:
        """Add one record (keyword arguments become columns)."""
        self.rows.append(_check_record(record))

    def extend(self, records: Iterable[Mapping[str, object]]) -> None:
        rows = self.rows
        for record in records:
            rows.append(_check_record(record))

    @property
    def columns(self) -> list[str]:
        """Union of all record keys, in first-seen order."""
        cols: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                cols.setdefault(key)
        return list(cols)

    def column(self, name: str) -> list[object]:
        """All values of one column (missing entries become None)."""
        return [row.get(name) for row in self.rows]

    def where(self, **conditions: object) -> "ResultTable":
        """Rows matching all equality conditions, as a new table.

        The returned rows are *copies*: mutating a filtered row must
        never corrupt the source table.
        """
        sub = ResultTable(name=self.name, params=dict(self.params))
        sub.rows = [
            dict(row)
            for row in self.rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]
        return sub

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultTable):
            return NotImplemented
        return (
            self.name == other.name
            and self.params == other.params
            and self.rows == other.rows
        )

    def __repr__(self) -> str:
        return (
            f"ResultTable(name={self.name!r}, params={self.params!r}, "
            f"rows=<{len(self.rows)} rows, {self.backend}>)"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, path: str | Path) -> "ResultTable":
        """Load a table written by :meth:`write_json` (lossless)."""
        payload = json.loads(Path(path).read_text())
        table = cls(name=payload["name"], params=payload.get("params", {}))
        table.extend(payload.get("rows", []))
        return table

    @classmethod
    def from_csv(cls, path: str | Path) -> "ResultTable":
        """Load a table from CSV.

        Column order follows the CSV header (which :meth:`write_csv`
        emits in first-seen order).  Quote-wrapped cells decode to the
        exact string that was written; other cells fall back to scalar
        inference (empty becomes ``None``, ``True`` / ``False`` /
        numeric text become the matching Python scalars).  The table
        name is the file stem; no parameter manifest survives CSV —
        use :meth:`from_json` when provenance matters.
        """
        path = Path(path)
        table = cls(name=path.stem)
        with path.open(newline="") as fh:
            reader = csv.DictReader(fh)
            for raw in reader:
                table.append(**{k: _decode_cell(v) for k, v in raw.items()})
        return table

    @classmethod
    def from_columnar(cls, path: str | Path) -> "ResultTable":
        """Open a shard directory as a lazily materialized table."""
        store = ColumnStore(path)
        table = cls(name=store.name, params=dict(store.params))
        table._backend = _ColumnarBackend(store)
        return table

    def write_csv(self, path: str | Path) -> Path:
        """Write the rows as round-trip-safe CSV; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        cols = self.columns
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=cols)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: _encode_cell(v) for k, v in row.items()})
        return path

    def write_json(self, path: str | Path) -> Path:
        """Write rows + parameter manifest as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"name": self.name, "params": self.params, "rows": self.rows}
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        return path

    def to_columnar(
        self, path: str | Path, *, shard_rows: int | None = None
    ) -> Path:
        """Write the table as a columnar shard directory; returns it."""
        kwargs = {} if shard_rows is None else {"shard_rows": shard_rows}
        with ShardWriter(
            path, name=self.name, params=self.params, **kwargs
        ) as writer:
            writer.append_rows(self.rows)
        return Path(path)

    def render(self, *, max_rows: int | None = None, floatfmt: str = ".1f") -> str:
        """Plain-text table rendering for terminal output."""
        cols = self.columns
        if not cols:
            return f"[{self.name}: empty]"
        rows = self.rows if max_rows is None else self.rows[:max_rows]

        def fmt(v: object) -> str:
            if isinstance(v, float):
                return format(v, floatfmt)
            return "" if v is None else str(v)

        body = [[fmt(row.get(c)) for c in cols] for row in rows]
        widths = [
            max(len(c), *(len(r[i]) for r in body)) if body else len(c)
            for i, c in enumerate(cols)
        ]
        header = "  ".join(c.rjust(w) for c, w in zip(cols, widths))
        rule = "-" * len(header)
        lines = [header, rule]
        lines += ["  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in body]
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _encode_cell(value: object) -> object:
    """CSV cell encoding that survives :func:`_decode_cell` exactly.

    Non-string scalars pass through (their ``str()`` form re-infers to
    the same value).  A string is wrapped in literal quote characters
    when inference would misread it — numeric-looking text, ``"True"``,
    the empty string (which would collide with ``None``) — or when it
    already both starts and ends with a quote (so unwrapping stays
    unambiguous).  The csv module escapes the added quotes as needed.
    """
    if not isinstance(value, str):
        return value
    if value == "" or (value.startswith('"') and value.endswith('"')):
        return f'"{value}"'
    inferred = _infer_scalar(value)
    if isinstance(inferred, str) and inferred == value:
        return value
    return f'"{value}"'


def _decode_cell(text: str | None) -> object:
    """Inverse of :func:`_encode_cell` for one CSV cell."""
    if text is None or text == "":
        return None
    if len(text) >= 2 and text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    return _infer_scalar(text)


def _infer_scalar(text: str) -> object:
    """Best-effort inverse of ``str()`` for unquoted CSV cells."""
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def load_table(path: str | Path) -> ResultTable:
    """Load a table written by any of the ``write_*`` / columnar paths.

    ``.json`` paths load losslessly.  ``.csv`` paths first look for a
    sibling ``.json`` (the experiment harness always writes both) and
    prefer it; otherwise the CSV is parsed with the quote-aware cell
    decoder.  A directory holding a columnar manifest opens as a lazy
    columnar view.  A path without a suffix tries ``<path>.json``,
    ``<path>.csv``, then ``<path>.columnar``.
    """
    path = Path(path)
    if is_column_store(path):
        return ResultTable.from_columnar(path)
    if path.suffix == ".json":
        return ResultTable.from_json(path)
    if path.suffix == ".csv":
        sibling = path.with_suffix(".json")
        if sibling.exists():
            return ResultTable.from_json(sibling)
        return ResultTable.from_csv(path)
    for candidate in (path.with_suffix(".json"), path.with_suffix(".csv")):
        if candidate.exists():
            return load_table(candidate)
    columnar = path.with_suffix(".columnar")
    if is_column_store(columnar):
        return ResultTable.from_columnar(columnar)
    raise FileNotFoundError(f"no table found at {path}(.json|.csv|.columnar)")
