"""Typed result tables with CSV/JSON persistence.

Every experiment produces an :class:`ResultTable`: a named list of
records (plain dicts with scalar values) plus the parameters that
generated them.  Tables serialize to CSV (for plotting elsewhere) and
JSON (with the parameter manifest, for exact provenance).

Loading is symmetric: :meth:`ResultTable.from_json` is lossless;
:meth:`ResultTable.from_csv` recovers column order from the header and
infers ``int`` / ``float`` / ``bool`` / ``None`` typing from the cell
text (CSV cannot distinguish the *string* ``"True"`` from the boolean,
so prefer the JSON artifact — :func:`load_table` does automatically
when both files exist side by side).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping

__all__ = ["ResultTable", "load_table"]

_SCALARS = (str, int, float, bool, type(None))


def _check_record(record: Mapping[str, object]) -> dict[str, object]:
    clean: dict[str, object] = {}
    for key, value in record.items():
        if not isinstance(key, str):
            raise TypeError(f"record keys must be strings, got {key!r}")
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"record values must be scalars; {key!r} has {type(value).__name__}"
            )
        clean[key] = value
    return clean


@dataclass(slots=True)
class ResultTable:
    """An experiment's tabular output plus its provenance manifest."""

    name: str
    params: dict[str, object] = field(default_factory=dict)
    rows: list[dict[str, object]] = field(default_factory=list)

    def append(self, **record: object) -> None:
        """Add one record (keyword arguments become columns)."""
        self.rows.append(_check_record(record))

    def extend(self, records: Iterable[Mapping[str, object]]) -> None:
        for record in records:
            self.rows.append(_check_record(record))

    @property
    def columns(self) -> list[str]:
        """Union of all record keys, in first-seen order."""
        cols: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                cols.setdefault(key)
        return list(cols)

    def column(self, name: str) -> list[object]:
        """All values of one column (missing entries become None)."""
        return [row.get(name) for row in self.rows]

    def where(self, **conditions: object) -> "ResultTable":
        """Rows matching all equality conditions, as a new table."""
        sub = ResultTable(name=self.name, params=dict(self.params))
        sub.rows = [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]
        return sub

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, path: str | Path) -> "ResultTable":
        """Load a table written by :meth:`write_json` (lossless)."""
        payload = json.loads(Path(path).read_text())
        table = cls(name=payload["name"], params=payload.get("params", {}))
        table.extend(payload.get("rows", []))
        return table

    @classmethod
    def from_csv(cls, path: str | Path) -> "ResultTable":
        """Load a table from CSV, inferring scalar types per cell.

        Column order follows the CSV header (which :meth:`write_csv`
        emits in first-seen order), empty cells become ``None``, and
        ``True`` / ``False`` / numeric text become the matching Python
        scalars.  The table name is the file stem; no parameter
        manifest survives CSV — use :meth:`from_json` when provenance
        matters.
        """
        path = Path(path)
        table = cls(name=path.stem)
        with path.open(newline="") as fh:
            reader = csv.DictReader(fh)
            for raw in reader:
                table.append(**{k: _infer_scalar(v) for k, v in raw.items()})
        return table

    def write_csv(self, path: str | Path) -> Path:
        """Write the rows as CSV; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        cols = self.columns
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=cols)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return path

    def write_json(self, path: str | Path) -> Path:
        """Write rows + parameter manifest as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"name": self.name, "params": self.params, "rows": self.rows}
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        return path

    def render(self, *, max_rows: int | None = None, floatfmt: str = ".1f") -> str:
        """Plain-text table rendering for terminal output."""
        cols = self.columns
        if not cols:
            return f"[{self.name}: empty]"
        rows = self.rows if max_rows is None else self.rows[:max_rows]

        def fmt(v: object) -> str:
            if isinstance(v, float):
                return format(v, floatfmt)
            return "" if v is None else str(v)

        body = [[fmt(row.get(c)) for c in cols] for row in rows]
        widths = [
            max(len(c), *(len(r[i]) for r in body)) if body else len(c)
            for i, c in enumerate(cols)
        ]
        header = "  ".join(c.rjust(w) for c, w in zip(cols, widths))
        rule = "-" * len(header)
        lines = [header, rule]
        lines += ["  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in body]
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def _infer_scalar(text: str | None) -> object:
    """Best-effort inverse of ``str()`` for CSV cells."""
    if text is None or text == "":
        return None
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def load_table(path: str | Path) -> ResultTable:
    """Load a table written by :meth:`ResultTable.write_csv` / ``write_json``.

    ``.json`` paths load losslessly.  ``.csv`` paths first look for a
    sibling ``.json`` (the experiment harness always writes both) and
    prefer it; otherwise the CSV is parsed with scalar-type inference.
    A path without a suffix tries ``<path>.json`` then ``<path>.csv``.
    """
    path = Path(path)
    if path.suffix == ".json":
        return ResultTable.from_json(path)
    if path.suffix == ".csv":
        sibling = path.with_suffix(".json")
        if sibling.exists():
            return ResultTable.from_json(sibling)
        return ResultTable.from_csv(path)
    for candidate in (path.with_suffix(".json"), path.with_suffix(".csv")):
        if candidate.exists():
            return load_table(candidate)
    raise FileNotFoundError(f"no table found at {path}(.json|.csv)")
