"""Columnar result backbone: out-of-core shard files for trial records.

Million-trial campaigns cannot live in a whole-file JSON table — they
can neither be written incrementally nor aggregated without
materializing everything.  This module is the storage refactor behind
the scaling-law study: a :class:`ColumnStore` is a *directory* of
packed-NumPy shard files (one typed array per column per shard, a tag
array distinguishing values from explicit ``None`` and missing cells)
plus a JSON manifest carrying name, parameter manifest, provenance,
column dtypes, and the shard index.

Writing is append-only and bounded-memory: a :class:`ShardWriter`
buffers at most ``shard_rows`` rows, flushes each full buffer as one
immutable ``shard-NNNNN.npz`` file, and rewrites the manifest
atomically (tmp + rename), so a killed writer leaves a readable store
containing every fully flushed shard.  ``append_keyed`` makes writes
idempotent by caller-chosen keys — the campaign executor uses job
digests so a resumed drain never duplicates trial rows.

Reading is streaming: :meth:`ColumnStore.scan` yields one decoded
shard at a time, and :func:`group_reduce` aggregates (count / mean /
var / min / max / quantiles per group key) while holding one shard of
raw data plus only the *requested value columns* in memory.  The
reductions are computed by the same :func:`reduce_values` kernel as
the in-memory reference :func:`group_reduce_rows`, so the sharded
path is bit-identical to the naive one (differentially tested in
``tests/io/test_columnar.py``).

Column typing: every column is one of ``int`` (int64), ``float``
(float64), ``bool``, ``str`` (unicode), or ``json`` — the lossless
fallback a shard falls into when a column mixes scalar types, where
each cell is stored as its JSON encoding.  Kinds are resolved per
shard, so late-arriving type changes never rewrite old shards.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..core.errors import ReproError
from ..obs.instruments import record_scan_rows, record_shard_write

__all__ = [
    "ColumnStore",
    "ShardWriter",
    "ColumnarError",
    "group_reduce",
    "group_reduce_rows",
    "reduce_values",
    "is_column_store",
    "DEFAULT_SHARD_ROWS",
    "MANIFEST_NAME",
    "FORMAT_VERSION",
]

#: Rows buffered before a shard is flushed (and therefore the writer's
#: peak in-memory row count).  64Ki rows of a handful of float64
#: columns is a few megabytes — small enough that a million-row
#: campaign never holds more than a sliver of itself in RAM, large
#: enough that shard-file overhead stays negligible.
DEFAULT_SHARD_ROWS = 65_536

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1

_SCALARS = (str, int, float, bool, type(None))

#: Cell tags stored alongside every column.
_TAG_VALUE = 0
_TAG_NONE = 1  # the cell holds an explicit ``None``
_TAG_MISSING = 2  # the record had no such key at all

_FILL = {"int": 0, "float": 0.0, "bool": False, "str": "", "json": "null"}


class ColumnarError(ReproError):
    """A malformed store, manifest, or write-path misuse."""


def is_column_store(path: str | Path) -> bool:
    """True when ``path`` is a directory holding a columnar manifest."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def _provenance() -> dict:
    """Best-effort provenance block (mirrors the campaign store's)."""
    import subprocess

    from .. import __version__

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
        )
        rev = out.stdout.strip() if out.returncode == 0 else None
    except OSError:
        rev = None
    return {
        "git_rev": rev or None,
        "package_version": __version__,
        "numpy": np.__version__,
        "created_at": time.time(),
    }


_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def _kind_of(value: object) -> str:
    # bool before int: Python bools are ints.
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        # Arbitrary-precision ints (e.g. SHA-256-derived campaign
        # seeds) overflow int64 — store them as JSON text instead.
        if _INT64_MIN <= value <= _INT64_MAX:
            return "int"
        return "json"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    raise ColumnarError(
        f"column cells must be scalars; got {type(value).__name__}"
    )


def _resolve_kind(values: list[object], tags: list[int]) -> str:
    """One shard's column kind: a single scalar type, or ``json``."""
    kind: str | None = None
    for value, tag in zip(values, tags):
        if tag != _TAG_VALUE:
            continue
        k = _kind_of(value)
        if kind is None:
            kind = k
        elif kind != k:
            return "json"
    return kind or "json"


def _encode_column(
    values: list[object], tags: list[int]
) -> tuple[str, np.ndarray, np.ndarray]:
    """Pack one column as (kind, value array, tag array)."""
    kind = _resolve_kind(values, tags)
    fill = _FILL[kind]
    if kind == "json":
        cells = [
            json.dumps(v) if t == _TAG_VALUE else fill
            for v, t in zip(values, tags)
        ]
        arr = np.asarray(cells, dtype=np.str_)
    elif kind == "str":
        cells = [v if t == _TAG_VALUE else fill for v, t in zip(values, tags)]
        arr = np.asarray(cells, dtype=np.str_)
    else:
        dtype = {"int": np.int64, "float": np.float64, "bool": np.bool_}[kind]
        cells = [v if t == _TAG_VALUE else fill for v, t in zip(values, tags)]
        arr = np.asarray(cells, dtype=dtype)
    return kind, arr, np.asarray(tags, dtype=np.int8)


def _decode_column(kind: str, arr: np.ndarray, tags: np.ndarray) -> list[object]:
    """Unpack one column to Python scalars (``None`` for null/missing)."""
    if kind == "json":
        raw = [json.loads(v) for v in arr.tolist()]
    else:
        raw = arr.tolist()  # C-speed conversion to Python scalars
    if tags.any():
        return [
            None if t else v for v, t in zip(raw, tags.tolist())
        ]
    return raw


def _merge_kind(a: str | None, b: str) -> str:
    if a is None or a == b:
        return b
    return "mixed"


class ShardWriter:
    """Append-only, bounded-memory writer for a :class:`ColumnStore`.

    Opening a path that already holds a store *resumes* it: new shards
    continue the numbering and the manifest's row/key bookkeeping picks
    up where the previous writer stopped.  ``name``/``params`` must
    then match the existing manifest (or be omitted).

    Durability: :meth:`flush` makes everything appended so far
    readable; the campaign executor flushes after every job so a crash
    loses at most the unflushed buffer.  Use as a context manager to
    flush on the way out.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        name: str | None = None,
        params: Mapping[str, object] | None = None,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> None:
        if shard_rows < 1:
            raise ColumnarError(f"shard_rows must be positive, got {shard_rows}")
        self.path = Path(path)
        self.shard_rows = shard_rows
        self.path.mkdir(parents=True, exist_ok=True)
        manifest_path = self.path / MANIFEST_NAME
        if manifest_path.exists():
            self._manifest = _read_manifest(self.path)
            if name is not None and name != self._manifest["name"]:
                raise ColumnarError(
                    f"store {self.path} holds table "
                    f"{self._manifest['name']!r}, not {name!r}"
                )
            if params:
                self._manifest["params"].update(dict(params))
        else:
            self._manifest = {
                "format": "repro-columnar",
                "version": FORMAT_VERSION,
                "name": name if name is not None else self.path.stem,
                "params": dict(params) if params else {},
                "provenance": _provenance(),
                "columns": {},
                "shards": [],
                "rows": 0,
                "keys": [],
            }
            self._write_manifest()
        self._keys: set[str] = set(self._manifest["keys"])
        # Column-major buffer: name -> (values, tags), all equal length.
        self._buffer: dict[str, tuple[list[object], list[int]]] = {}
        self._buffered = 0
        #: High-water mark of buffered rows — the memory-bound proxy the
        #: incremental-write tests assert on.
        self.max_buffered = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, **record: object) -> None:
        """Add one record (keyword arguments become columns)."""
        self.append_row(record)

    def append_row(self, record: Mapping[str, object]) -> None:
        for key, value in record.items():
            if not isinstance(key, str):
                raise ColumnarError(f"column names must be strings, got {key!r}")
            if not isinstance(value, _SCALARS):
                raise ColumnarError(
                    f"cells must be scalars; {key!r} has {type(value).__name__}"
                )
        self._append_cells(record)

    def append_rows(self, records: Iterable[Mapping[str, object]]) -> None:
        for record in records:
            self.append_row(record)

    def append_arrays(self, **columns: Sequence[object]) -> None:
        """Bulk-append equal-length columns (lists or NumPy arrays).

        The vectorized ingestion path: a million synthetic rows arrive
        as a handful of arrays, chunked internally so the buffer never
        exceeds ``shard_rows``.
        """
        if not columns:
            return
        lists = {
            k: (v.tolist() if isinstance(v, np.ndarray) else list(v))
            for k, v in columns.items()
        }
        lengths = {len(v) for v in lists.values()}
        if len(lengths) != 1:
            raise ColumnarError(
                f"append_arrays needs equal-length columns, got {sorted(lengths)}"
            )
        (total,) = lengths
        offset = 0
        while offset < total:
            take = min(self.shard_rows - self._buffered, total - offset)
            for name, values in lists.items():
                vals, tags = self._column_buffer(name)
                chunk = values[offset:offset + take]
                vals.extend(chunk)
                tags.extend(
                    _TAG_NONE if v is None else _TAG_VALUE for v in chunk
                )
            self._buffered += take
            self.max_buffered = max(self.max_buffered, self._buffered)
            offset += take
            if self._buffered >= self.shard_rows:
                self._flush_shard()

    def append_keyed(
        self, key: str, records: Iterable[Mapping[str, object]]
    ) -> bool:
        """Append a batch under an idempotency key; False when skipped.

        A key that the manifest already records is a no-op — the hook
        that lets a resumed campaign drain re-commit a job without
        duplicating its trial rows.  The batch is flushed (buffer and
        manifest) before the key is durable, so a crash between the
        two can only *lose* the key, never orphan rows under it.
        """
        if key in self._keys:
            return False
        self.append_rows(records)
        self.flush()
        self._keys.add(key)
        self._manifest["keys"] = sorted(self._keys)
        self._write_manifest()
        return True

    def has_key(self, key: str) -> bool:
        return key in self._keys

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _column_buffer(self, name: str) -> tuple[list[object], list[int]]:
        entry = self._buffer.get(name)
        if entry is None:
            # Column first seen mid-shard: backfill as missing.
            vals: list[object] = [None] * self._buffered
            tags: list[int] = [_TAG_MISSING] * self._buffered
            entry = (vals, tags)
            self._buffer[name] = entry
        return entry

    def _append_cells(self, record: Mapping[str, object]) -> None:
        for name in record:
            self._column_buffer(name)
        for name, (vals, tags) in self._buffer.items():
            if name in record:
                value = record[name]
                vals.append(value)
                tags.append(_TAG_NONE if value is None else _TAG_VALUE)
            else:
                vals.append(None)
                tags.append(_TAG_MISSING)
        self._buffered += 1
        self.max_buffered = max(self.max_buffered, self._buffered)
        if self._buffered >= self.shard_rows:
            self._flush_shard()

    def _flush_shard(self) -> None:
        if self._buffered == 0:
            return
        index = len(self._manifest["shards"])
        filename = f"shard-{index:05d}.npz"
        arrays: dict[str, np.ndarray] = {}
        shard_columns: dict[str, str] = {}
        for name, (vals, tags) in self._buffer.items():
            kind, arr, tag_arr = _encode_column(vals, tags)
            shard_columns[name] = kind
            arrays[f"v::{name}"] = arr
            arrays[f"t::{name}"] = tag_arr
        shard_path = self.path / filename
        with shard_path.open("wb") as fh:
            np.savez(fh, **arrays)
        self._manifest["shards"].append(
            {"file": filename, "rows": self._buffered, "columns": shard_columns}
        )
        self._manifest["rows"] += self._buffered
        for name, kind in shard_columns.items():
            merged = _merge_kind(self._manifest["columns"].get(name), kind)
            self._manifest["columns"][name] = merged
        record_shard_write(rows=self._buffered, size=shard_path.stat().st_size)
        self._buffer = {}
        self._buffered = 0
        self._write_manifest()

    def _write_manifest(self) -> None:
        tmp = self.path / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(self._manifest, indent=2) + "\n")
        os.replace(tmp, self.path / MANIFEST_NAME)

    def flush(self) -> None:
        """Write any buffered rows as a (possibly short) shard."""
        self._flush_shard()

    def close(self) -> "ColumnStore":
        """Flush and return a reader over everything written."""
        self.flush()
        return ColumnStore(self.path)

    @property
    def rows_written(self) -> int:
        return self._manifest["rows"] + self._buffered

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ColumnarError(f"no columnar manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ColumnarError(f"corrupt manifest at {manifest_path}: {exc}") from exc
    if manifest.get("format") != "repro-columnar":
        raise ColumnarError(
            f"{manifest_path} is not a repro columnar manifest"
        )
    if manifest.get("version", 0) > FORMAT_VERSION:
        raise ColumnarError(
            f"store {path} has format version {manifest['version']}; "
            f"this build reads up to {FORMAT_VERSION}"
        )
    manifest.setdefault("keys", [])
    manifest.setdefault("params", {})
    manifest.setdefault("columns", {})
    return manifest


class ColumnStore:
    """Read view over a shard directory written by :class:`ShardWriter`."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._manifest = _read_manifest(self.path)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._manifest["name"]

    @property
    def params(self) -> dict:
        return self._manifest["params"]

    @property
    def provenance(self) -> dict:
        return self._manifest.get("provenance", {})

    @property
    def rows(self) -> int:
        return self._manifest["rows"]

    @property
    def shard_count(self) -> int:
        return len(self._manifest["shards"])

    @property
    def columns(self) -> dict[str, str]:
        """Column name -> promoted kind (``mixed`` when shards disagree)."""
        return dict(self._manifest["columns"])

    @property
    def keys(self) -> list[str]:
        return list(self._manifest["keys"])

    def __len__(self) -> int:
        return self.rows

    def size_bytes(self) -> int:
        """Total on-disk footprint (shards + manifest)."""
        total = (self.path / MANIFEST_NAME).stat().st_size
        for shard in self._manifest["shards"]:
            total += (self.path / shard["file"]).stat().st_size
        return total

    def info(self) -> dict:
        """JSON-safe summary (the ``results info`` payload)."""
        return {
            "path": str(self.path),
            "name": self.name,
            "rows": self.rows,
            "shards": self.shard_count,
            "bytes": self.size_bytes(),
            "columns": self.columns,
            "keys": len(self._manifest["keys"]),
            "params": self.params,
            "provenance": self.provenance,
        }

    # ------------------------------------------------------------------
    # Streaming reads
    # ------------------------------------------------------------------
    def scan(
        self, columns: Sequence[str] | None = None
    ) -> Iterator[dict[str, list[object]]]:
        """Yield one decoded shard at a time as ``{column: values}``.

        Values are Python scalars; null and missing cells are ``None``.
        Never holds more than one shard in memory.  Requesting a column
        a shard never saw yields all-``None`` for that shard.
        """
        wanted = None if columns is None else list(columns)
        for shard in self._manifest["shards"]:
            with np.load(self.path / shard["file"]) as npz:
                names = wanted
                if names is None:
                    names = [k[3:] for k in npz.files if k.startswith("v::")]
                batch: dict[str, list[object]] = {}
                for name in names:
                    kind = shard["columns"].get(name)
                    if kind is None:
                        batch[name] = [None] * shard["rows"]
                        continue
                    batch[name] = _decode_column(
                        kind, npz[f"v::{name}"], npz[f"t::{name}"]
                    )
            record_scan_rows(shard["rows"])
            yield batch

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Stream records; missing cells are omitted, ``None`` kept.

        Reconstructs exactly the dicts that were appended (the tag
        array distinguishes an explicit ``None`` cell from an absent
        key), shard by shard.
        """
        for shard in self._manifest["shards"]:
            with np.load(self.path / shard["file"]) as npz:
                names = [k[3:] for k in npz.files if k.startswith("v::")]
                decoded = {}
                tags = {}
                for name in names:
                    kind = shard["columns"][name]
                    arr, tag = npz[f"v::{name}"], npz[f"t::{name}"]
                    decoded[name] = _decode_column(kind, arr, tag)
                    tags[name] = tag.tolist()
            record_scan_rows(shard["rows"])
            for i in range(shard["rows"]):
                row = {
                    name: decoded[name][i]
                    for name in names
                    if tags[name][i] != _TAG_MISSING
                }
                yield row

    def column(self, name: str) -> list[object]:
        """One full column (missing/null cells are ``None``).

        Materializes that column only — the streaming alternative to a
        whole-table load.
        """
        out: list[object] = []
        for batch in self.scan([name]):
            out.extend(batch[name])
        return out


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

REDUCERS = ("count", "mean", "var", "min", "max")


def reduce_values(
    values: np.ndarray,
    *,
    reducers: Sequence[str] = REDUCERS,
    quantiles: Sequence[float] = (),
) -> dict[str, object]:
    """Compute the requested statistics over one group's value array.

    The *single* reduction kernel both :func:`group_reduce` (sharded)
    and :func:`group_reduce_rows` (in-memory) call, which is what makes
    the two paths bit-identical: the only difference between them is
    how the per-group arrays are assembled.  An empty (all-null) group
    reports ``count=0`` and ``None`` for every other statistic.
    """
    out: dict[str, object] = {}
    empty = values.size == 0
    for reducer in reducers:
        if reducer == "count":
            out["count"] = int(values.size)
        elif reducer == "mean":
            out["mean"] = None if empty else float(np.mean(values))
        elif reducer == "var":
            out["var"] = None if empty else float(np.var(values))
        elif reducer == "min":
            out["min"] = None if empty else float(np.min(values))
        elif reducer == "max":
            out["max"] = None if empty else float(np.max(values))
        else:
            raise ColumnarError(
                f"unknown reducer {reducer!r}; expected one of {REDUCERS}"
            )
    for q in quantiles:
        label = f"p{round(float(q) * 100):g}"
        out[label] = None if empty else float(np.quantile(values, float(q)))
    return out


def _sort_key(key: tuple) -> tuple:
    """Total order over heterogeneous group keys: None < numbers < str."""
    out = []
    for cell in key:
        if cell is None:
            out.append((0, ""))
        elif isinstance(cell, (bool, int, float)):
            out.append((1, float(cell)))
        elif isinstance(cell, str):
            out.append((2, cell))
        else:
            out.append((3, repr(cell)))
    return tuple(out)


def _finalize_groups(
    groups: dict[tuple, dict[str, list[np.ndarray]]],
    by: Sequence[str],
    values: Sequence[str],
    reducers: Sequence[str],
    quantiles: Sequence[float],
) -> list[dict[str, object]]:
    out = []
    for key in sorted(groups, key=_sort_key):
        row: dict[str, object] = dict(zip(by, key))
        for column in values:
            chunks = groups[key][column]
            data = (
                np.concatenate(chunks) if chunks
                else np.empty(0, dtype=np.float64)
            )
            stats = reduce_values(data, reducers=reducers, quantiles=quantiles)
            prefix = f"{column}_" if len(values) > 1 else ""
            for stat, value in stats.items():
                row[f"{prefix}{stat}"] = value
        out.append(row)
    return out


def _collect_batch(
    groups: dict[tuple, dict[str, list[np.ndarray]]],
    keys: list[tuple],
    batch: dict[str, list[object]],
    values: Sequence[str],
) -> None:
    """Bucket one shard's value cells into the per-group accumulators."""
    order: dict[tuple, list[int]] = {}
    for i, key in enumerate(keys):
        order.setdefault(key, []).append(i)
    for key, indices in order.items():
        slot = groups.setdefault(key, {column: [] for column in values})
        for column in values:
            cells = batch[column]
            numeric = [
                float(cells[i]) for i in indices if cells[i] is not None
            ]
            if numeric:
                slot[column].append(np.asarray(numeric, dtype=np.float64))


def group_reduce(
    store: ColumnStore,
    *,
    by: Sequence[str],
    values: Sequence[str],
    reducers: Sequence[str] = REDUCERS,
    quantiles: Sequence[float] = (),
) -> list[dict[str, object]]:
    """Streaming grouped aggregation over a sharded store.

    Groups by the tuple of ``by`` columns and reduces each ``values``
    column with ``reducers`` (+ ``pNN`` columns for ``quantiles``).
    Holds one decoded shard plus the condensed per-group value arrays
    in memory — never the whole store.  Null cells are excluded from
    every statistic; a group whose value column is all-null reports
    ``count=0`` and ``None`` stats.  With a single value column the
    stat columns are named ``count``/``mean``/…; with several they are
    prefixed ``<column>_``.
    """
    by = list(by)
    values = list(values)
    if not by:
        raise ColumnarError("group_reduce needs at least one 'by' column")
    if not values:
        raise ColumnarError("group_reduce needs at least one value column")
    groups: dict[tuple, dict[str, list[np.ndarray]]] = {}
    for batch in store.scan(by + values):
        keys = list(zip(*(batch[b] for b in by)))
        _collect_batch(groups, keys, batch, values)
    return _finalize_groups(groups, by, values, reducers, quantiles)


def group_reduce_rows(
    rows: Iterable[Mapping[str, object]],
    *,
    by: Sequence[str],
    values: Sequence[str],
    reducers: Sequence[str] = REDUCERS,
    quantiles: Sequence[float] = (),
) -> list[dict[str, object]]:
    """In-memory reference aggregation over plain row dicts.

    Same grouping, same null handling, same :func:`reduce_values`
    kernel as :func:`group_reduce` — the oracle the differential suite
    checks the sharded path against, and the aggregation behind
    ``results query`` on row-backed tables.
    """
    by = list(by)
    values = list(values)
    if not by:
        raise ColumnarError("group_reduce needs at least one 'by' column")
    if not values:
        raise ColumnarError("group_reduce needs at least one value column")
    groups: dict[tuple, dict[str, list[np.ndarray]]] = {}
    batch: dict[str, list[object]] = {c: [] for c in set(by) | set(values)}
    keys: list[tuple] = []
    for row in rows:
        keys.append(tuple(row.get(b) for b in by))
        for column in batch:
            batch[column].append(row.get(column))
    _collect_batch(groups, keys, batch, values)
    return _finalize_groups(groups, by, values, reducers, quantiles)
