"""Result and trace persistence."""

from .columnar import (
    ColumnStore,
    ShardWriter,
    group_reduce,
    group_reduce_rows,
    is_column_store,
)
from .protocols import (
    load_protocol,
    protocol_from_dict,
    protocol_to_dict,
    save_protocol,
)
from .results import ResultTable, load_table
from .traces import load_trace, replay, save_trace, trace_from_dict, trace_to_dict

__all__ = [
    "ResultTable",
    "ColumnStore",
    "ShardWriter",
    "group_reduce",
    "group_reduce_rows",
    "is_column_store",
    "protocol_to_dict",
    "protocol_from_dict",
    "save_protocol",
    "load_protocol",
    "load_table",
    "trace_to_dict",
    "trace_from_dict",
    "save_trace",
    "load_trace",
    "replay",
]
