"""Protocol (de)serialization.

Protocols are behaviour descriptions — a state list, a rule list, a
group map, an initial state — so they round-trip naturally through
JSON.  This lets users save custom protocols (e.g. ones discovered by
the search module), ship them alongside experiment results, and reload
them without code.

The stability predicate is code, not data, and is *not* serialized;
reloaded protocols fall back to silence detection unless the caller
re-attaches a predicate factory.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.errors import ProtocolError
from ..core.protocol import Protocol
from ..core.state import StateSpace
from ..core.transitions import TransitionTable

__all__ = ["protocol_to_dict", "protocol_from_dict", "save_protocol", "load_protocol"]

_FORMAT = "repro-protocol-v1"


def protocol_to_dict(protocol: Protocol) -> dict:
    """Serialize a protocol's structure to plain data."""
    space = protocol.space
    groups = None
    if protocol.num_groups:
        groups = {name: space.group_of(name) for name in space.names}
    return {
        "format": _FORMAT,
        "name": protocol.name,
        "states": list(space.names),
        "groups": groups,
        "num_groups": protocol.num_groups or None,
        "initial_state": protocol.initial_state,
        "symmetric": protocol.is_symmetric,
        "metadata": {
            k: v
            for k, v in protocol.metadata.items()
            if isinstance(v, (str, int, float, bool, type(None)))
        },
        # Ordered rules, exactly as stored (mirrors included), so the
        # reloaded table is rule-for-rule identical.
        "rules": [
            [t.p, t.q, t.p2, t.q2] for t in protocol.transitions
        ],
    }


def protocol_from_dict(data: dict) -> Protocol:
    """Rebuild a protocol serialized with :func:`protocol_to_dict`.

    The reloaded protocol has no stability predicate (see module
    docstring); engines will use silence detection.
    """
    if data.get("format") != _FORMAT:
        raise ProtocolError(
            f"unsupported protocol payload format: {data.get('format')!r}"
        )
    groups = data.get("groups")
    space = StateSpace(
        data["states"],
        groups={k: int(v) for k, v in groups.items()} if groups else None,
        num_groups=data.get("num_groups"),
    )
    table = TransitionTable(space)
    for p, q, p2, q2 in data.get("rules", []):
        table.add(p, q, p2, q2, mirror=False)
    return Protocol(
        data.get("name", "unnamed"),
        space,
        table,
        data.get("initial_state"),
        metadata=data.get("metadata") or {},
    )


def save_protocol(protocol: Protocol, path: str | Path) -> Path:
    """Write a protocol as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(protocol_to_dict(protocol), indent=2) + "\n")
    return path


def load_protocol(path: str | Path) -> Protocol:
    """Load a protocol saved with :func:`save_protocol`."""
    return protocol_from_dict(json.loads(Path(path).read_text()))
