"""Execution-trace serialization.

Traces recorded with :func:`repro.core.execution.record_script` (or
assembled by tests) can be stored as JSON for inspection and replayed
onto a fresh population — used by the Figure 1/2 walk-through fixtures
and handy when debugging a scheduler.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.execution import ExecutionTrace, Step
from ..core.population import Population
from ..core.protocol import Protocol

__all__ = ["trace_to_dict", "trace_from_dict", "save_trace", "load_trace", "replay"]


def trace_to_dict(trace: ExecutionTrace) -> dict:
    """Serialize a trace (steps + optional snapshots) to plain data."""
    return {
        "steps": [
            {
                "index": s.index,
                "initiator": s.initiator,
                "responder": s.responder,
                "before": list(s.before),
                "after": list(s.after),
            }
            for s in trace.steps
        ],
        "configurations": [c.as_dict(skip_zero=False) for c in trace.configurations],
    }


def trace_from_dict(data: dict, protocol: Protocol) -> ExecutionTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    from ..core.configuration import Configuration

    trace = ExecutionTrace()
    for s in data.get("steps", []):
        trace.steps.append(
            Step(
                index=int(s["index"]),
                initiator=int(s["initiator"]),
                responder=int(s["responder"]),
                before=tuple(s["before"]),
                after=tuple(s["after"]),
            )
        )
    for c in data.get("configurations", []):
        trace.configurations.append(Configuration.from_mapping(protocol, c))
    return trace


def save_trace(trace: ExecutionTrace, path: str | Path) -> Path:
    """Write a trace as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_to_dict(trace), indent=2) + "\n")
    return path


def load_trace(path: str | Path, protocol: Protocol) -> ExecutionTrace:
    """Load a trace saved with :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()), protocol)


def replay(trace: ExecutionTrace, population: Population) -> None:
    """Re-apply a trace's interactions to a population in place.

    Raises ``AssertionError`` when the observed pre/post states diverge
    from the recorded ones — i.e. the trace was recorded against a
    different protocol or starting configuration.
    """
    for step in trace.steps:
        before = (population.state_of(step.initiator), population.state_of(step.responder))
        assert before == step.before, (
            f"replay diverged at step {step.index}: expected pre-states "
            f"{step.before}, found {before}"
        )
        population.interact(step.initiator, step.responder)
        after = (population.state_of(step.initiator), population.state_of(step.responder))
        assert after == step.after, (
            f"replay diverged at step {step.index}: expected post-states "
            f"{step.after}, found {after}"
        )
