"""``repro-experiments results`` — inspect, convert, query, merge tables.

The migration and aggregation surface of the columnar backbone::

    results info results/scaling_law.columnar
    results convert results/fig3.json results/fig3.columnar
    results convert results/fig3.columnar results/fig3_roundtrip.json
    results query results/scaling_law.columnar --by k,n \
        --values interactions --quantiles 0.5,0.9
    results merge merged.columnar shard-a.columnar shard-b.json

``convert`` moves a table between JSON / CSV / columnar in either
direction; columnar sources stream shard by shard, so converting *to*
JSON/CSV is the only direction that materializes rows.  ``query`` runs
the streaming :func:`~repro.io.columnar.group_reduce` on columnar
stores and the bit-identical in-memory reference on row files.
``merge`` concatenates any number of sources into one destination
(order preserved source by source).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .columnar import (
    ColumnStore,
    ShardWriter,
    group_reduce,
    group_reduce_rows,
    is_column_store,
)
from .results import ResultTable, load_table

__all__ = ["results_main"]


def _load_any(path: str) -> ResultTable:
    """Load a table from an explicit artifact, without sibling magic.

    Unlike :func:`load_table`, a ``.csv`` argument means the CSV file
    itself — ``results convert`` must read what it was pointed at.
    """
    p = Path(path)
    if is_column_store(p):
        return ResultTable.from_columnar(p)
    if p.suffix == ".csv" and p.exists():
        return ResultTable.from_csv(p)
    return load_table(p)


def _write_any(table: ResultTable, dest: str, *, shard_rows: int | None) -> Path:
    p = Path(dest)
    if p.suffix == ".json":
        return table.write_json(p)
    if p.suffix == ".csv":
        return table.write_csv(p)
    return table.to_columnar(p, shard_rows=shard_rows)


def _parse_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_where(clauses: list[str]) -> dict[str, object]:
    out: dict[str, object] = {}
    for clause in clauses:
        key, sep, raw = clause.partition("=")
        if not sep or not key:
            raise SystemExit(f"--where expects KEY=VALUE, got {clause!r}")
        out[key] = _infer_cli_scalar(raw)
    return out


def _infer_cli_scalar(raw: str) -> object:
    if raw == "None":
        return None
    if raw in ("True", "False"):
        return raw == "True"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _cmd_info(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if is_column_store(path):
        payload = ColumnStore(path).info()
        payload["backend"] = "columnar"
    else:
        table = _load_any(args.path)
        payload = {
            "path": str(path),
            "name": table.name,
            "rows": len(table),
            "columns": table.columns,
            "params": table.params,
            "backend": table.backend,
        }
    print(json.dumps(payload, indent=2, default=str))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    table = _load_any(args.src)
    written = _write_any(table, args.dest, shard_rows=args.shard_rows)
    print(f"wrote {len(table)} rows to {written}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    by = _parse_list(args.by)
    values = _parse_list(args.values)
    reducers = tuple(_parse_list(args.reducers))
    quantiles = tuple(float(q) for q in _parse_list(args.quantiles or ""))
    where = _parse_where(args.where)

    path = Path(args.path)
    if is_column_store(path) and not where:
        # The streaming path: one shard in memory at a time.
        rows = group_reduce(
            ColumnStore(path),
            by=by,
            values=values,
            reducers=reducers,
            quantiles=quantiles,
        )
        name = ColumnStore(path).name
    else:
        table = _load_any(args.path)
        if where:
            table = table.where(**where)
        rows = group_reduce_rows(
            table.rows,
            by=by,
            values=values,
            reducers=reducers,
            quantiles=quantiles,
        )
        name = table.name
    out = ResultTable(name=f"{name}_query")
    out.extend(rows)
    if args.out is not None:
        written = _write_any(out, args.out, shard_rows=None)
        print(f"wrote {len(out)} group(s) to {written}")
    else:
        print(out.render(floatfmt=".4g"))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    dest = Path(args.dest)
    sources = list(args.sources)
    if not sources:
        raise SystemExit("merge needs at least one source")
    if dest.suffix in (".json", ".csv"):
        merged: ResultTable | None = None
        for src in sources:
            table = _load_any(src)
            if merged is None:
                merged = ResultTable(name=table.name, params=dict(table.params))
            merged.extend(table.rows)
        assert merged is not None
        written = _write_any(merged, args.dest, shard_rows=None)
        print(f"wrote {len(merged)} rows to {written}")
        return 0
    # Columnar destination: stream every source through the writer.
    total = 0
    writer: ShardWriter | None = None
    for src in sources:
        if is_column_store(src):
            store = ColumnStore(src)
            if writer is None:
                writer = ShardWriter(
                    dest,
                    name=store.name,
                    params=store.params,
                    **(
                        {}
                        if args.shard_rows is None
                        else {"shard_rows": args.shard_rows}
                    ),
                )
            writer.append_rows(store.iter_rows())
            total += store.rows
        else:
            table = _load_any(src)
            if writer is None:
                writer = ShardWriter(
                    dest,
                    name=table.name,
                    params=dict(table.params),
                    **(
                        {}
                        if args.shard_rows is None
                        else {"shard_rows": args.shard_rows}
                    ),
                )
            writer.append_rows(table.rows)
            total += len(table)
    assert writer is not None
    writer.flush()
    print(f"wrote {total} rows to {dest}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments results",
        description="Inspect, convert, query, and merge result tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="summarize a table or shard store")
    p_info.add_argument("path", help="JSON/CSV file or columnar directory")
    p_info.set_defaults(fn=_cmd_info)

    p_convert = sub.add_parser(
        "convert", help="convert between JSON, CSV, and columnar"
    )
    p_convert.add_argument("src", help="source artifact")
    p_convert.add_argument(
        "dest",
        help="destination (.json / .csv, anything else is a columnar dir)",
    )
    p_convert.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        help="rows per shard for columnar destinations",
    )
    p_convert.set_defaults(fn=_cmd_convert)

    p_query = sub.add_parser(
        "query", help="grouped aggregation (streaming on columnar stores)"
    )
    p_query.add_argument("path", help="table or shard store to aggregate")
    p_query.add_argument(
        "--by", required=True, help="comma-separated group-key columns"
    )
    p_query.add_argument(
        "--values", required=True, help="comma-separated value columns"
    )
    p_query.add_argument(
        "--reducers",
        default="count,mean,var,min,max",
        help="comma-separated reducers (default: count,mean,var,min,max)",
    )
    p_query.add_argument(
        "--quantiles",
        default=None,
        help="comma-separated quantiles in [0,1], e.g. 0.5,0.9",
    )
    p_query.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="equality filter before grouping (repeatable; loads rows)",
    )
    p_query.add_argument(
        "--out",
        default=None,
        help="write the aggregate as a table instead of printing",
    )
    p_query.set_defaults(fn=_cmd_query)

    p_merge = sub.add_parser(
        "merge", help="concatenate tables/stores into one destination"
    )
    p_merge.add_argument("dest", help="destination artifact")
    p_merge.add_argument("sources", nargs="+", help="source artifacts")
    p_merge.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        help="rows per shard for columnar destinations",
    )
    p_merge.set_defaults(fn=_cmd_merge)
    return parser


def results_main(argv: list[str] | None = None) -> int:
    if argv is None:  # pragma: no cover — script entry
        argv = sys.argv[1:]
    args = build_parser().parse_args(argv)
    return args.fn(args)
