"""Content-addressed snapshot store with session lineage.

One SQLite database holds every session the daemon has ever hosted and
every checkpoint those sessions took.  The layout separates *where* a
checkpoint sits from *what* it contains:

``sessions``
    One row per session: engine, protocol (name + behaviour
    fingerprint), the full creation config as canonical JSON, lifecycle
    status, the current interaction cursor, and — for forked sessions —
    the parent session id plus the interaction count the fork was taken
    at.  The parent columns are the lineage model: walking them
    reconstructs the fork tree of any debugging investigation.

``snapshots``
    One row per checkpoint, keyed by ``(session_id, interactions)``.
    The row stores only a digest — the content address of the payload.

``blobs``
    The payloads, keyed by SHA-256 digest of the serialized
    :class:`~repro.engine.session.SessionState`
    (:meth:`~repro.engine.session.SessionState.digest`).  Two
    checkpoints with identical state — a fork and its parent at the
    fork point, or a rewound session re-checkpointing an interaction
    count it already visited — share one blob.

Concurrency follows the campaign store: WAL journaling, one connection
per thread, writes serialized per connection.  :meth:`gc` deletes
*dominated* snapshots — checkpoints that are neither a session's first
or latest, nor a fork base some child was cut from, nor on the
caller's keep-grid — then drops orphaned blobs and reports how many
bytes the store shrank by.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.errors import SimulationError
from ..engine.session import SessionState
from ..obs.telemetry import get_telemetry

__all__ = [
    "SnapshotStore",
    "SessionRow",
    "SnapshotRow",
    "Checkpoint",
    "SESSION_STATUSES",
]

SESSION_STATUSES = ("running", "converged", "exhausted", "halted", "deleted")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sessions (
    id                  TEXT PRIMARY KEY,
    engine              TEXT NOT NULL,
    protocol            TEXT NOT NULL,
    fingerprint         TEXT NOT NULL,
    config              TEXT NOT NULL,
    mode                TEXT NOT NULL CHECK (mode IN ('free', 'driven')),
    status              TEXT NOT NULL DEFAULT 'running'
                        CHECK (status IN
                        ('running', 'converged', 'exhausted', 'halted', 'deleted')),
    cursor              INTEGER NOT NULL DEFAULT 0,
    effective           INTEGER NOT NULL DEFAULT 0,
    parent_id           TEXT,
    parent_interactions INTEGER,
    created_at          REAL NOT NULL,
    updated_at          REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS sessions_by_parent ON sessions (parent_id);
CREATE TABLE IF NOT EXISTS snapshots (
    session_id   TEXT NOT NULL,
    interactions INTEGER NOT NULL,
    effective    INTEGER NOT NULL DEFAULT 0,
    digest       TEXT NOT NULL,
    driver       TEXT,
    created_at   REAL NOT NULL,
    PRIMARY KEY (session_id, interactions)
);
CREATE INDEX IF NOT EXISTS snapshots_by_digest ON snapshots (digest);
CREATE TABLE IF NOT EXISTS blobs (
    digest     TEXT PRIMARY KEY,
    payload    BLOB NOT NULL,
    size       INTEGER NOT NULL,
    created_at REAL NOT NULL
);
"""


@dataclass(slots=True)
class SessionRow:
    """One row of the ``sessions`` table, config already decoded."""

    id: str
    engine: str
    protocol: str
    fingerprint: str
    config: dict
    mode: str
    status: str
    cursor: int
    effective: int
    parent_id: str | None
    parent_interactions: int | None
    created_at: float
    updated_at: float

    @classmethod
    def _from_row(cls, row: sqlite3.Row) -> "SessionRow":
        return cls(
            id=row["id"],
            engine=row["engine"],
            protocol=row["protocol"],
            fingerprint=row["fingerprint"],
            config=json.loads(row["config"]),
            mode=row["mode"],
            status=row["status"],
            cursor=row["cursor"],
            effective=row["effective"],
            parent_id=row["parent_id"],
            parent_interactions=row["parent_interactions"],
            created_at=row["created_at"],
            updated_at=row["updated_at"],
        )


@dataclass(slots=True)
class SnapshotRow:
    """One checkpoint: position, content address, and payload size."""

    session_id: str
    interactions: int
    effective: int
    digest: str
    size: int
    created_at: float


@dataclass(slots=True)
class Checkpoint:
    """One materialized checkpoint, ready to restore.

    ``interactions``/``effective`` are the manager's coordinates (for
    driven sessions the engine payload keeps its own counters at zero).
    ``driver`` is the manager's replay sidecar — for driven sessions,
    the per-agent state-index shadow the schedule interpreter needs to
    resume mid-run; None for free-running sessions.
    """

    interactions: int
    effective: int
    payload: bytes
    driver: dict | None


class SnapshotStore:
    """Durable home of sessions and their checkpoints (thread-safe)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        self._conns: list[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        with self._write():
            pass

    # ------------------------------------------------------------------
    # Connections (same per-thread discipline as the campaign store)
    # ------------------------------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def _query(self, sql: str, args: tuple = ()) -> sqlite3.Cursor:
        return self._conn().execute(sql, args)

    def _write(self):
        return self._conn()

    def close(self) -> None:
        with self._conns_lock:
            for conn in self._conns:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass
            self._conns.clear()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def create_session(
        self,
        session_id: str,
        *,
        engine: str,
        protocol: str,
        fingerprint: str,
        config: dict,
        mode: str,
        parent_id: str | None = None,
        parent_interactions: int | None = None,
        cursor: int = 0,
        effective: int = 0,
    ) -> None:
        now = time.time()
        with self._write() as conn:
            try:
                conn.execute(
                    "INSERT INTO sessions (id, engine, protocol, fingerprint, "
                    "config, mode, cursor, effective, parent_id, "
                    "parent_interactions, created_at, updated_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        session_id, engine, protocol, fingerprint,
                        json.dumps(config, sort_keys=True), mode,
                        cursor, effective, parent_id, parent_interactions,
                        now, now,
                    ),
                )
            except sqlite3.IntegrityError:
                raise SimulationError(
                    f"session id {session_id!r} already exists in {self.path}"
                ) from None

    def get_session(self, session_id: str) -> SessionRow | None:
        row = self._query(
            "SELECT * FROM sessions WHERE id = ?", (session_id,)
        ).fetchone()
        return None if row is None else SessionRow._from_row(row)

    def require_session(self, session_id: str) -> SessionRow:
        row = self.get_session(session_id)
        if row is None or row.status == "deleted":
            raise SimulationError(f"no session {session_id!r} in {self.path}")
        return row

    def list_sessions(self, *, include_deleted: bool = False) -> list[SessionRow]:
        sql = "SELECT * FROM sessions"
        if not include_deleted:
            sql += " WHERE status != 'deleted'"
        sql += " ORDER BY created_at, id"
        return [SessionRow._from_row(r) for r in self._query(sql).fetchall()]

    def update_session(
        self,
        session_id: str,
        *,
        status: str | None = None,
        cursor: int | None = None,
        effective: int | None = None,
    ) -> None:
        sets, args = ["updated_at = ?"], [time.time()]
        if status is not None:
            if status not in SESSION_STATUSES:
                raise SimulationError(
                    f"unknown session status {status!r}; "
                    f"expected one of {SESSION_STATUSES}"
                )
            sets.append("status = ?")
            args.append(status)
        if cursor is not None:
            sets.append("cursor = ?")
            args.append(cursor)
        if effective is not None:
            sets.append("effective = ?")
            args.append(effective)
        args.append(session_id)
        with self._write() as conn:
            conn.execute(
                f"UPDATE sessions SET {', '.join(sets)} WHERE id = ?", tuple(args)
            )

    def delete_session(self, session_id: str, *, drop_snapshots: bool = True) -> None:
        """Tombstone a session (its row stays for lineage queries)."""
        with self._write() as conn:
            conn.execute(
                "UPDATE sessions SET status = 'deleted', updated_at = ? "
                "WHERE id = ?",
                (time.time(), session_id),
            )
            if drop_snapshots:
                conn.execute(
                    "DELETE FROM snapshots WHERE session_id = ?", (session_id,)
                )
        self._drop_orphan_blobs()

    def children(self, session_id: str) -> list[SessionRow]:
        """Sessions forked from ``session_id`` (one lineage hop)."""
        rows = self._query(
            "SELECT * FROM sessions WHERE parent_id = ? ORDER BY created_at, id",
            (session_id,),
        ).fetchall()
        return [SessionRow._from_row(r) for r in rows]

    def lineage(self, session_id: str) -> list[tuple[str, int | None]]:
        """Ancestry chain ``[(ancestor_id, fork_interactions), ...]``,
        oldest first, ending with the session itself.  Each entry's
        second element is the parent checkpoint that session was cut
        from (None for a root session)."""
        chain: list[tuple[str, int | None]] = []
        seen: set[str] = set()
        current: str | None = session_id
        while current is not None and current not in seen:
            seen.add(current)
            row = self.get_session(current)
            if row is None:
                chain.append((current, None))
                break
            chain.append((current, row.parent_interactions))
            current = row.parent_id
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def put_snapshot(
        self,
        session_id: str,
        interactions: int,
        state: SessionState | bytes,
        *,
        effective: int = 0,
        driver: dict | None = None,
        digest: str | None = None,
    ) -> tuple[str, bool]:
        """Store one checkpoint; returns ``(digest, blob_created)``.

        ``interactions``/``effective`` are the *manager's* coordinates —
        for driven sessions the engine payload keeps its own counters at
        zero, so the row is the authority on where a checkpoint sits.
        ``driver`` rides in the row rather than the blob so the blob
        stays a pure content-addressed :class:`SessionState`.
        Re-checkpointing the same ``(session_id, interactions)`` slot
        replaces the pointer row (a rewound-and-replayed session visits
        the same coordinates again); the blob is written only when its
        digest is new.
        """
        if isinstance(state, SessionState):
            payload = state.to_bytes()
            digest = state.digest() if digest is None else digest
        else:
            payload = bytes(state)
            if digest is None:
                digest = SessionState.from_bytes(payload).digest()
        now = time.time()
        with self._write() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO blobs (digest, payload, size, created_at) "
                "VALUES (?, ?, ?, ?)",
                (digest, payload, len(payload), now),
            )
            blob_created = cur.rowcount == 1
            conn.execute(
                "INSERT OR REPLACE INTO snapshots "
                "(session_id, interactions, effective, digest, driver, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    session_id, interactions, effective, digest,
                    None if driver is None else json.dumps(driver), now,
                ),
            )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.counter("sessiond.snapshots.stored").inc()
            if blob_created:
                telemetry.counter("sessiond.snapshots.bytes").inc(len(payload))
        return digest, blob_created

    _SNAPSHOT_SELECT = (
        "SELECT s.interactions AS interactions, s.effective AS effective, "
        "s.driver AS driver, b.payload AS payload FROM snapshots s "
        "JOIN blobs b ON b.digest = s.digest WHERE s.session_id = ?"
    )

    @staticmethod
    def _checkpoint(row: sqlite3.Row | None) -> Checkpoint | None:
        if row is None:
            return None
        return Checkpoint(
            interactions=row["interactions"],
            effective=row["effective"],
            payload=bytes(row["payload"]),
            driver=None if row["driver"] is None else json.loads(row["driver"]),
        )

    def get_snapshot(
        self, session_id: str, interactions: int
    ) -> Checkpoint | None:
        """The checkpoint stored exactly at ``interactions``."""
        row = self._query(
            self._SNAPSHOT_SELECT + " AND s.interactions = ?",
            (session_id, interactions),
        ).fetchone()
        return self._checkpoint(row)

    def nearest_snapshot(
        self, session_id: str, interactions: int
    ) -> Checkpoint | None:
        """The latest checkpoint at or before ``interactions``."""
        row = self._query(
            self._SNAPSHOT_SELECT
            + " AND s.interactions <= ? ORDER BY s.interactions DESC LIMIT 1",
            (session_id, interactions),
        ).fetchone()
        return self._checkpoint(row)

    def latest_snapshot(self, session_id: str) -> Checkpoint | None:
        row = self._query(
            self._SNAPSHOT_SELECT + " ORDER BY s.interactions DESC LIMIT 1",
            (session_id,),
        ).fetchone()
        return self._checkpoint(row)

    def list_snapshots(self, session_id: str) -> list[SnapshotRow]:
        rows = self._query(
            "SELECT s.session_id AS session_id, s.interactions AS interactions, "
            "s.effective AS effective, s.digest AS digest, b.size AS size, "
            "s.created_at AS created_at "
            "FROM snapshots s JOIN blobs b ON b.digest = s.digest "
            "WHERE s.session_id = ? ORDER BY s.interactions",
            (session_id,),
        ).fetchall()
        return [
            SnapshotRow(
                session_id=r["session_id"],
                interactions=r["interactions"],
                effective=r["effective"],
                digest=r["digest"],
                size=r["size"],
                created_at=r["created_at"],
            )
            for r in rows
        ]

    # ------------------------------------------------------------------
    # Accounting and GC
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Store-wide accounting: rows, distinct blobs, payload bytes."""
        sessions = self._query(
            "SELECT COUNT(*) AS c FROM sessions WHERE status != 'deleted'"
        ).fetchone()["c"]
        snapshots = self._query("SELECT COUNT(*) AS c FROM snapshots").fetchone()["c"]
        row = self._query(
            "SELECT COUNT(*) AS c, COALESCE(SUM(size), 0) AS b FROM blobs"
        ).fetchone()
        return {
            "sessions": sessions,
            "snapshots": snapshots,
            "blobs": row["c"],
            "bytes": row["b"],
        }

    def _protected(self, session_id: str) -> set[int]:
        """Interaction counts GC must keep for one session: its first
        and latest checkpoints plus every fork base of a child."""
        keep: set[int] = set()
        row = self._query(
            "SELECT MIN(interactions) AS lo, MAX(interactions) AS hi "
            "FROM snapshots WHERE session_id = ?",
            (session_id,),
        ).fetchone()
        if row["lo"] is not None:
            keep.add(row["lo"])
            keep.add(row["hi"])
        for child in self._query(
            "SELECT parent_interactions FROM sessions "
            "WHERE parent_id = ? AND status != 'deleted' "
            "AND parent_interactions IS NOT NULL",
            (session_id,),
        ).fetchall():
            keep.add(child["parent_interactions"])
        return keep

    def gc(self, *, keep_every: int | None = None, vacuum: bool = True) -> dict[str, int]:
        """Delete dominated snapshots and orphaned blobs.

        A snapshot is *dominated* when nothing can need it: it is not a
        session's first or latest checkpoint, not the fork base of a
        live child, and — when ``keep_every`` is given — not on the
        coarse keep-grid (``interactions % keep_every == 0``).  With
        ``keep_every=None``, everything except the protected set goes.
        Snapshots of deleted sessions are always dominated.  Returns
        removal counts and ``bytes_freed``.
        """
        if keep_every is not None and keep_every < 1:
            raise SimulationError(f"keep_every must be positive, got {keep_every}")
        before = self.stats()["bytes"]
        removed_snapshots = 0
        with self._write() as conn:
            for row in self._query(
                "SELECT DISTINCT session_id FROM snapshots"
            ).fetchall():
                sid = row["session_id"]
                session = self.get_session(sid)
                if session is None or session.status == "deleted":
                    cur = conn.execute(
                        "DELETE FROM snapshots WHERE session_id = ?", (sid,)
                    )
                    removed_snapshots += cur.rowcount
                    continue
                keep = self._protected(sid)
                for snap in self._query(
                    "SELECT interactions FROM snapshots WHERE session_id = ?",
                    (sid,),
                ).fetchall():
                    at = snap["interactions"]
                    if at in keep:
                        continue
                    if keep_every is not None and at % keep_every == 0:
                        continue
                    conn.execute(
                        "DELETE FROM snapshots "
                        "WHERE session_id = ? AND interactions = ?",
                        (sid, at),
                    )
                    removed_snapshots += 1
        removed_blobs = self._drop_orphan_blobs()
        if vacuum:
            self._conn().execute("VACUUM")
        after = self.stats()["bytes"]
        return {
            "snapshots_removed": removed_snapshots,
            "blobs_removed": removed_blobs,
            "bytes_freed": before - after,
        }

    def _drop_orphan_blobs(self) -> int:
        with self._write() as conn:
            cur = conn.execute(
                "DELETE FROM blobs WHERE digest NOT IN "
                "(SELECT DISTINCT digest FROM snapshots)"
            )
        return cur.rowcount
