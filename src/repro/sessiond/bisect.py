"""Divergence bisection: where do two sessions first disagree?

Two driven sessions replaying the *same* recorded schedule are pure
functions of their protocol tables — so if they end in different
configurations, some single interaction is the first place the
trajectories split (a mutated transition rule, a buggy engine data
path, a protocol-variant behaviour difference).  Linear replay finds it
in O(T) engine steps; this module finds it in O(log T) *probes*, each
probe restoring the nearest stored checkpoint and driving only the
window up to the probe point (O(checkpoint interval) work against a
warm store).

The binary search maintains the invariant "configurations equal after
``lo`` interactions, different after ``hi``"; when the window closes,
``lo`` is the 0-based index of the first divergent interaction — the
two sessions agree on everything before pair ``lo`` and disagree right
after it.  The caveat is the invariant's premise: bisection assumes a
divergence, once present, persists to the probe points it inspects.  A
divergence that heals itself exactly (possible in principle for
count-identical excursions) would be invisible at the endpoints and
not found; the conformance differ's linear lockstep replay remains the
exhaustive tool.

The emitted minimal reproducer uses the conformance subsystem's trace
format (``conform_divergence`` + ``conform_schedule`` records via
:class:`~repro.obs.trace.TraceWriter`), so the existing replay tooling
consumes it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..conform.differ import Divergence
from ..conform.schedule import InteractionSchedule
from ..core.errors import SimulationError
from ..obs.telemetry import get_telemetry
from ..obs.trace import TraceWriter
from .manager import SessionManager

__all__ = ["BisectReport", "bisect_divergence"]


@dataclass(slots=True)
class BisectReport:
    """Outcome of one bisection between two sessions."""

    session_a: str
    session_b: str
    schedule_length: int
    #: 0-based index of the first divergent interaction, or None when
    #: the two sessions agree over the whole schedule.
    first_divergence: int | None
    #: The (initiator, responder) pair at the divergent step.
    pair: tuple[int, int] | None
    #: Configurations immediately after the divergent interaction.
    counts_a: list[int] | None
    counts_b: list[int] | None
    #: Checkpoint-restore probes the search spent.
    probes: int
    reproducer_path: str | None = None

    @property
    def diverged(self) -> bool:
        return self.first_divergence is not None

    def to_record(self) -> dict:
        return {
            "session_a": self.session_a,
            "session_b": self.session_b,
            "schedule_length": self.schedule_length,
            "first_divergence": self.first_divergence,
            "pair": None if self.pair is None else [int(self.pair[0]), int(self.pair[1])],
            "counts_a": self.counts_a,
            "counts_b": self.counts_b,
            "probes": self.probes,
            "reproducer_path": self.reproducer_path,
        }

    def summary(self) -> str:
        head = (
            f"{self.session_a} vs {self.session_b}: "
            f"{self.schedule_length} scheduled interactions"
        )
        if not self.diverged:
            return head + f" — no divergence ({self.probes} probes)"
        lines = [
            head
            + f" — first divergence at interaction {self.first_divergence} "
            f"pair={self.pair} ({self.probes} probes)",
            f"  counts_a: {self.counts_a}",
            f"  counts_b: {self.counts_b}",
        ]
        if self.reproducer_path:
            lines.append(f"  reproducer: {self.reproducer_path}")
        return "\n".join(lines)


def bisect_divergence(
    manager: SessionManager,
    session_a: str,
    session_b: str,
    *,
    reproducer_dir: str | Path | None = None,
) -> BisectReport:
    """Binary-search the first interaction where two sessions diverge.

    Both sessions must be driven replays of the same schedule (same
    pair list, same population); their protocols may differ — that is
    the point.  Neither session needs to have been advanced: probes
    restore whatever checkpoints exist (interaction 0 always does) and
    drive forward from there, so denser checkpoints only make the
    search cheaper, never change its answer.

    When a divergence is found and ``reproducer_dir`` is given, the
    minimal reproducer — the schedule prefix up to and including the
    divergent pair — is dumped in the conformance trace format.
    """
    row_a = manager.store.require_session(session_a)
    row_b = manager.store.require_session(session_b)
    for row in (row_a, row_b):
        if row.mode != "driven":
            raise SimulationError(
                f"bisection needs driven sessions; {row.id!r} is mode {row.mode!r}"
            )
    sched_a = row_a.config["schedule"]
    sched_b = row_b.config["schedule"]
    if sched_a["pairs"] != sched_b["pairs"] or sched_a["n"] != sched_b["n"]:
        raise SimulationError(
            f"sessions {session_a!r} and {session_b!r} replay different "
            "schedules; bisection compares trajectories under one schedule"
        )
    if sched_a["initial_counts"] != sched_b["initial_counts"]:
        raise SimulationError(
            f"sessions {session_a!r} and {session_b!r} start from different "
            "configurations"
        )

    telemetry = get_telemetry()
    probes = 0

    def counts(sid: str, t: int) -> list[int]:
        nonlocal probes
        probes += 1
        if telemetry.enabled:
            telemetry.counter("sessiond.bisect.probes").inc()
        return manager.counts_at(sid, t)

    total = len(sched_a["pairs"])
    report = BisectReport(
        session_a=session_a,
        session_b=session_b,
        schedule_length=total,
        first_divergence=None,
        pair=None,
        counts_a=None,
        counts_b=None,
        probes=0,
    )
    if total == 0 or counts(session_a, total) == counts(session_b, total):
        report.probes = probes
        return report

    # Invariant: equal after lo interactions, different after hi.
    lo, hi = 0, total
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if counts(session_a, mid) == counts(session_b, mid):
            lo = mid
        else:
            hi = mid
    step = lo  # counts_at(lo) agree, counts_at(lo + 1) differ
    counts_a = counts(session_a, step + 1)
    counts_b = counts(session_b, step + 1)
    schedule = InteractionSchedule.from_record(sched_a)
    report.first_divergence = step
    report.pair = schedule.pairs[step]
    report.counts_a = counts_a
    report.counts_b = counts_b
    report.probes = probes
    if reproducer_dir is not None:
        report.reproducer_path = _dump_reproducer(
            reproducer_dir, schedule, report
        )
    return report


def _dump_reproducer(
    directory: str | Path, schedule: InteractionSchedule, report: BisectReport
) -> str:
    """Write the minimal-reproducer trace (conformance format)."""
    assert report.first_divergence is not None
    directory = Path(directory)
    path = directory / (
        f"bisect-{report.session_a}-vs-{report.session_b}"
        f"-step{report.first_divergence}.jsonl"
    )
    divergence = Divergence(
        engine=report.session_b,
        step=report.first_divergence,
        pair=report.pair or (-1, -1),
        kind="counts",
        detail=(
            f"sessions {report.session_a!r} and {report.session_b!r} first "
            f"disagree after interaction {report.first_divergence}"
        ),
        reference_counts=list(report.counts_a or []),
        engine_counts=list(report.counts_b or []),
    )
    with TraceWriter(
        path,
        meta={
            "kind": "sessiond-bisect-reproducer",
            "session_a": report.session_a,
            "session_b": report.session_b,
            "probes": report.probes,
        },
    ) as writer:
        writer.write({"type": "conform_divergence", **divergence.to_record()})
        writer.write(
            {
                "type": "conform_schedule",
                **schedule.prefix(report.first_divergence + 1).to_record(),
            }
        )
    return str(path)
