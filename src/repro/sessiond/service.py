"""Session daemon: live simulations as an HTTP resource.

A thin JSON API over one :class:`~repro.sessiond.manager.SessionManager`
so simulations outlive any single client: create a session, advance it
in slices from anywhere, fork it at a checkpoint, rewind it, bisect two
sessions against each other — all over plain HTTP.  Pure stdlib —
``ThreadingHTTPServer`` gives one thread per connection; the manager's
coarse lock serializes engine work and the store supports the handler
threads via per-thread SQLite connections and WAL mode.

Endpoints
---------
``GET  /healthz``                  liveness probe
``GET  /sessions``                 all stored sessions
``POST /sessions``                 create (body: session config)
``GET  /sessions/<id>``            status + config digest + lineage
``POST /sessions/<id>/advance``    body ``{"budget": 1000}`` (optional)
``POST /sessions/<id>/snapshot``   checkpoint now
``POST /sessions/<id>/fork``       body ``{"at": N}`` (optional)
``POST /sessions/<id>/rewind``     body ``{"at": N}``
``GET  /sessions/<id>/snapshots``  stored checkpoint index
``GET  /sessions/<id>/result``     terminal SimulationResult record
``DELETE /sessions/<id>``          tombstone + drop checkpoints
``POST /bisect``                   body ``{"a": id, "b": id,
                                   "reproducer_dir": path?}``
``POST /gc``                       body ``{"keep_every": N?}``
``GET  /metrics``                  service counters + telemetry

Every response is ``application/json``.  See ``docs/sessiond.md`` for
the full API table and examples.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..core.errors import ReproError, SimulationError
from ..core.httputil import BadRequest, parse_content_length, parse_limit
from ..obs import Telemetry, set_telemetry
from .bisect import bisect_divergence
from .manager import SessionManager
from .store import SnapshotStore

__all__ = ["SessionService"]


class _Metrics:
    """Cumulative counters, guarded by a lock (handler threads write)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests = 0
        self.created = 0
        self.advanced_interactions = 0
        self.forks = 0
        self.rewinds = 0
        self.bisections = 0

    def bump(self, field: str, amount: float = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "uptime_seconds": time.time() - self.started_at,
                "requests": self.requests,
                "created": self.created,
                "advanced_interactions": self.advanced_interactions,
                "forks": self.forks,
                "rewinds": self.rewinds,
                "bisections": self.bisections,
            }


class SessionService:
    """HTTP facade over one session manager.

    Parameters
    ----------
    store_path:
        SQLite snapshot-store path (created if missing).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`address` after :meth:`start`).
    checkpoint_interval:
        Default automatic-checkpoint cadence for new sessions.
    """

    def __init__(
        self,
        store_path: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        checkpoint_interval: int | None = None,
    ) -> None:
        kwargs = {}
        if checkpoint_interval is not None:
            kwargs["checkpoint_interval"] = checkpoint_interval
        self.manager = SessionManager(SnapshotStore(store_path), **kwargs)
        self.metrics = _Metrics()
        #: Live telemetry (sessiond.* instruments), installed
        #: process-wide while the service runs, exposed under /metrics.
        self.telemetry = Telemetry()
        self._previous_telemetry = None
        self._stop = threading.Event()
        self._server_thread: threading.Thread | None = None
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Actual bound ``(host, port)``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SessionService":
        """Serve in a background thread; returns self for chaining."""
        self._previous_telemetry = set_telemetry(self.telemetry)
        self._server_thread = threading.Thread(
            target=self._httpd.serve_forever, name="sessiond-http", daemon=True
        )
        self._server_thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI ``serve`` verb."""
        self.start()
        try:
            while not self._stop.is_set():
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=10)
        self.manager.close()
        if self._previous_telemetry is not None:
            set_telemetry(self._previous_telemetry)
            self._previous_telemetry = None

    # ------------------------------------------------------------------
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------
    def handle_get(self, path: str, query: dict[str, str]) -> tuple[int, dict]:
        self.metrics.bump("requests")
        if path == "/healthz":
            return 200, {"ok": True, "store": str(self.manager.store.path)}
        if path == "/metrics":
            body = self.metrics.snapshot()
            body["store"] = self.manager.store.stats()
            body["telemetry"] = self.telemetry.snapshot()
            return 200, body
        try:
            limit = parse_limit(query.get("limit"), default=1000)
        except BadRequest as exc:
            return 400, {"error": str(exc)}
        if path == "/sessions":
            return 200, {"sessions": self.manager.sessions()[:limit]}
        sid, _, tail = path.removeprefix("/sessions/").partition("/")
        if path.startswith("/sessions/") and sid:
            try:
                if tail == "":
                    return 200, self.manager.status(sid)
                if tail == "snapshots":
                    return 200, {
                        "session": sid,
                        "snapshots": self.manager.snapshots(sid)[:limit],
                    }
                if tail == "result":
                    return 200, self.manager.result(sid)
            except SimulationError as exc:
                return 404, {"error": str(exc)}
        return 404, {"error": f"no route for GET {path}"}

    def handle_post(self, path: str, body: dict) -> tuple[int, dict]:
        self.metrics.bump("requests")
        try:
            if path == "/sessions":
                payload = self.manager.create(
                    body, session_id=body.pop("id", None)
                )
                self.metrics.bump("created")
                return 200, payload
            if path == "/bisect":
                report = bisect_divergence(
                    self.manager,
                    body["a"],
                    body["b"],
                    reproducer_dir=body.get("reproducer_dir"),
                )
                self.metrics.bump("bisections")
                return 200, report.to_record()
            if path == "/gc":
                return 200, self.manager.gc(keep_every=body.get("keep_every"))
            sid, _, verb = path.removeprefix("/sessions/").partition("/")
            if path.startswith("/sessions/") and sid:
                if verb == "advance":
                    payload = self.manager.advance(sid, body.get("budget"))
                    self.metrics.bump("advanced_interactions", payload["advanced"])
                    return 200, payload
                if verb == "snapshot":
                    return 200, self.manager.snapshot(sid)
                if verb == "fork":
                    payload = self.manager.fork(
                        sid, at=body.get("at"), child_id=body.get("id")
                    )
                    self.metrics.bump("forks")
                    return 200, payload
                if verb == "rewind":
                    if "at" not in body:
                        return 400, {"error": "rewind body needs 'at'"}
                    payload = self.manager.rewind(sid, int(body["at"]))
                    self.metrics.bump("rewinds")
                    return 200, payload
            return 404, {"error": f"no route for POST {path}"}
        except KeyError as exc:
            return 400, {"error": f"missing body key {exc}"}
        except (ReproError, TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}

    def handle_delete(self, path: str) -> tuple[int, dict]:
        self.metrics.bump("requests")
        sid = path.removeprefix("/sessions/")
        if not path.startswith("/sessions/") or not sid or "/" in sid:
            return 404, {"error": f"no route for DELETE {path}"}
        try:
            self.manager.delete(sid)
        except SimulationError as exc:
            return 404, {"error": str(exc)}
        return 200, {"deleted": sid}


def _make_handler(service: SessionService) -> type[BaseHTTPRequestHandler]:
    """A handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt: str, *args: object) -> None:  # noqa: A003
            pass  # no access log — /metrics carries the counters

        def _respond(self, code: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 — http.server API
            from urllib.parse import parse_qsl, urlsplit

            parts = urlsplit(self.path)
            query = dict(parse_qsl(parts.query))
            try:
                code, payload = service.handle_get(parts.path, query)
            except Exception as exc:  # noqa: BLE001 — surface as 500
                code, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            self._respond(code, payload)

        def do_POST(self) -> None:  # noqa: N802 — http.server API
            try:
                length = parse_content_length(self.headers)
            except BadRequest as exc:
                # A malformed header used to raise out of the handler
                # and drop the connection with no response at all.
                # The body length is unknowable, so close afterwards.
                self.close_connection = True
                self._respond(400, {"error": str(exc)})
                return
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw or b"{}")
                if not isinstance(body, dict):
                    raise ValueError("request body must be a JSON object")
            except ValueError as exc:
                self._respond(400, {"error": f"bad JSON body: {exc}"})
                return
            try:
                code, payload = service.handle_post(self.path, body)
            except Exception as exc:  # noqa: BLE001 — surface as 500
                code, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            self._respond(code, payload)

        def do_DELETE(self) -> None:  # noqa: N802 — http.server API
            try:
                code, payload = service.handle_delete(self.path)
            except Exception as exc:  # noqa: BLE001 — surface as 500
                code, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            self._respond(code, payload)

    return Handler
