"""The session manager: live engine sessions over a durable store.

A :class:`SessionManager` hosts many concurrent simulations, each a
real :class:`~repro.engine.session.EngineSession`, and keeps every one
durable through the :class:`~repro.sessiond.store.SnapshotStore`:
sessions checkpoint automatically every ``checkpoint_interval``
interactions and at every terminal transition, so a manager (or a
daemon restart) can :meth:`attach` to any session and resume from its
latest checkpoint.

Two advancement modes exist per session:

``free``
    The engine runs on its own randomness, exactly as
    :meth:`Engine.run` would — ``advance`` slices the run into
    checkpoint-sized chunks.

``driven``
    The session replays a recorded
    :class:`~repro.conform.schedule.InteractionSchedule` through the
    engine's real data path via ``apply_scheduled`` — no engine
    randomness is consumed, so the trajectory is a pure function of
    (schedule, protocol).  That determinism is what makes time-travel
    replay bit-identical and divergence bisection meaningful.  Because
    count-level engines never see agent identities, the manager keeps a
    per-agent state-index *shadow* (the same name-level interpreter the
    conformance oracle uses) to translate each scheduled pair ``(a,
    b)`` into the ordered state pair ``(p, q)`` the engine needs; the
    shadow rides along with every checkpoint as the driver sidecar.

Budget-sliced fairness: :meth:`pump` advances every running session
round-robin in bounded slices, so one monopolizing run cannot starve
the rest of the fleet.
"""

from __future__ import annotations

import hashlib
import json
import threading
import uuid
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..conform.schedule import InteractionSchedule
from ..core.errors import SimulationError
from ..core.protocol import Protocol
from ..engine.base import Engine, SimulationResult
from ..engine.ensemble import EnsembleEngine
from ..engine.registry import available_engines, build_engine
from ..engine.session import EngineSession, SessionStatus, protocol_fingerprint
from ..obs.telemetry import get_telemetry
from ..protocols.registry import build_protocol
from .store import Checkpoint, SnapshotStore

__all__ = [
    "SessionManager",
    "ManagedSession",
    "DRIVEN_ENGINES",
    "config_digest",
]

#: Engine paths driven execution supports — must stay in lockstep with
#: :data:`repro.conform.differ.ENGINE_PATHS` (pinned by test).
DRIVEN_ENGINES = (
    "agent",
    "batch",
    "count",
    "hybrid",
    "ensemble",
    "count-jit",
    "batch-jit",
    "graph",
)

#: Default automatic-checkpoint cadence (interactions).
DEFAULT_CHECKPOINT_INTERVAL = 4096


def config_digest(config: dict) -> str:
    """SHA-256 of the canonical JSON encoding of a session config."""
    return hashlib.sha256(
        json.dumps(config, sort_keys=True).encode()
    ).hexdigest()


def _build_session_protocol(config: dict) -> Protocol:
    """The protocol a config describes, mutation applied if requested."""
    protocol = build_protocol(config["protocol"], **config.get("params", {}))
    rule = config.get("mutate_rule")
    if rule is not None:
        from ..conform.mutation import mutate_protocol

        protocol = mutate_protocol(
            protocol, tuple(rule) if isinstance(rule, list) else rule
        )
    return protocol


def _drivable_engine(name: str) -> Engine:
    """An engine whose session supports driven execution.

    The ensemble engine is pinned to its pure vectorized path
    (``finish_threshold=0``), same as the conformance differ — the
    scalar-finisher hand-off does not accept external schedules.
    """
    if name not in DRIVEN_ENGINES:
        raise SimulationError(
            f"engine {name!r} does not support driven execution; "
            f"choose from {list(DRIVEN_ENGINES)}"
        )
    if name == "ensemble":
        return EnsembleEngine(finish_threshold=0)
    return build_engine(name)


@dataclass(slots=True)
class ManagedSession:
    """One live session plus the manager-owned coordinates.

    For driven sessions the engine's internal counters stay at zero
    (``apply_scheduled`` bypasses them), so ``cursor``/``effective``
    here are the authoritative position; for free sessions they mirror
    the engine session's own counters after every advance.
    """

    id: str
    engine: str
    mode: str
    config: dict
    protocol: Protocol
    session: EngineSession
    schedule: InteractionSchedule | None
    checkpoint_interval: int
    cursor: int = 0
    effective: int = 0
    status: SessionStatus = SessionStatus.RUNNING
    #: Driven mode only: per-agent state indices (the oracle shadow).
    shadow: list[int] | None = None
    result_record: dict | None = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status.terminal


class SessionManager:
    """Create, advance, fork, rewind and persist live sessions.

    Thread-safe via one coarse lock — the HTTP daemon's handler threads
    all funnel through it, which is plenty for a debugging service and
    keeps the engine sessions single-threaded as they require.
    """

    def __init__(
        self,
        store: SnapshotStore | str | Path,
        *,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if checkpoint_interval < 1:
            raise SimulationError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        self.store = (
            store if isinstance(store, SnapshotStore) else SnapshotStore(store)
        )
        self.checkpoint_interval = checkpoint_interval
        self._live: dict[str, ManagedSession] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, config: dict, *, session_id: str | None = None) -> dict:
        """Create a session from a config dict and checkpoint it at 0.

        Config keys: ``protocol`` (registry name), ``params`` (builder
        kwargs), ``engine``, ``mode`` ("free" | "driven"), and then
        per-mode — free: ``n`` (or ``initial_counts``), ``seed``,
        ``max_interactions``, ``track``; driven: ``schedule`` (an
        :meth:`InteractionSchedule.to_record` dict).  ``mutate_rule``
        (optional) corrupts one transition rule via
        :func:`~repro.conform.mutation.mutate_protocol` — the seeded-bug
        hook the bisection self-test uses.  ``checkpoint_interval``
        overrides the manager default for this session.
        """
        with self._lock:
            sid = session_id or f"s-{uuid.uuid4().hex[:12]}"
            ms = self._build(sid, dict(config))
            self.store.create_session(
                sid,
                engine=ms.engine,
                protocol=ms.protocol.name,
                fingerprint=protocol_fingerprint(ms.protocol),
                config=ms.config,
                mode=ms.mode,
            )
            self._checkpoint(ms)
            self._live[sid] = ms
            self._update_gauge()
            return self.status(sid)

    def _build(self, sid: str, config: dict) -> ManagedSession:
        """A fresh ManagedSession at interaction 0 (nothing persisted)."""
        mode = config.get("mode", "free")
        engine_name = config.get("engine", "count")
        protocol = _build_session_protocol(config)
        interval = int(
            config.get("checkpoint_interval", self.checkpoint_interval)
        )
        if interval < 1:
            raise SimulationError(
                f"checkpoint_interval must be positive, got {interval}"
            )
        if mode == "driven":
            if "schedule" not in config:
                raise SimulationError(
                    "driven sessions need a recorded schedule "
                    "(config key 'schedule')"
                )
            schedule = InteractionSchedule.from_record(config["schedule"])
            if len(schedule.initial_counts) != protocol.num_states:
                raise SimulationError(
                    f"schedule has {len(schedule.initial_counts)} states, "
                    f"protocol has {protocol.num_states}"
                )
            session = _drivable_engine(engine_name).start(
                protocol, initial_counts=list(schedule.initial_counts), seed=0
            )
            shadow: list[int] | None = []
            for idx, c in enumerate(schedule.initial_counts):
                shadow.extend([idx] * c)
        elif mode == "free":
            if engine_name not in available_engines():
                raise SimulationError(
                    f"unknown engine {engine_name!r}; "
                    f"known engines: {', '.join(available_engines())}"
                )
            schedule = None
            shadow = None
            session = build_engine(engine_name).start(
                protocol,
                config.get("n"),
                seed=config.get("seed"),
                initial_counts=config.get("initial_counts"),
                max_interactions=config.get("max_interactions"),
                track_state=config.get("track"),
            )
        else:
            raise SimulationError(
                f"unknown session mode {mode!r}; expected 'free' or 'driven'"
            )
        config["mode"] = mode
        config["engine"] = engine_name
        config["checkpoint_interval"] = interval
        return ManagedSession(
            id=sid,
            engine=engine_name,
            mode=mode,
            config=config,
            protocol=protocol,
            session=session,
            schedule=schedule,
            checkpoint_interval=interval,
            shadow=shadow,
        )

    def attach(self, session_id: str) -> dict:
        """Resurrect a stored session from its latest durable checkpoint.

        The in-memory session (if any) is discarded: attach answers
        "what does the store say", which is also what a freshly started
        daemon does for every session it finds.
        """
        with self._lock:
            row = self.store.require_session(session_id)
            ms = self._build(session_id, row.config)
            ckpt = self.store.latest_snapshot(session_id)
            if ckpt is None:
                raise SimulationError(
                    f"session {session_id!r} has no stored checkpoint to attach to"
                )
            self._restore_into(ms, ckpt)
            self._live[session_id] = ms
            self.store.update_session(
                session_id,
                status=ms.status.value,
                cursor=ms.cursor,
                effective=ms.effective,
            )
            self._update_gauge()
            return self.status(session_id)

    def delete(self, session_id: str) -> None:
        """Drop the live session and tombstone its store row."""
        with self._lock:
            self._live.pop(session_id, None)
            self.store.require_session(session_id)
            self.store.delete_session(session_id)
            self._update_gauge()

    def close(self) -> None:
        """Checkpoint every live session and release the store."""
        with self._lock:
            for ms in self._live.values():
                self._checkpoint(ms)
            self._live.clear()
            self._update_gauge()
            self.store.close()

    # ------------------------------------------------------------------
    # Advancement
    # ------------------------------------------------------------------
    def advance(self, session_id: str, budget: int | None = None) -> dict:
        """Advance one session by up to ``budget`` interactions.

        ``budget=None`` runs to the end (terminal status for free
        sessions, schedule end for driven ones).  Checkpoints land on
        the session's cadence and at the terminal transition.  Returns
        the post-advance :meth:`status` payload plus the number of
        interactions actually advanced.
        """
        if budget is not None and budget < 1:
            raise SimulationError(f"advance budget must be positive, got {budget}")
        with self._lock:
            ms = self._require_live(session_id)
            before = ms.cursor
            if not ms.terminal:
                if ms.mode == "driven":
                    self._advance_driven(ms, budget)
                else:
                    self._advance_free(ms, budget)
                self.store.update_session(
                    session_id,
                    status=ms.status.value,
                    cursor=ms.cursor,
                    effective=ms.effective,
                )
                if ms.terminal:
                    self._update_gauge()
            payload = self.status(session_id)
            payload["advanced"] = ms.cursor - before
            return payload

    def pump(self, budget: int, *, slice_budget: int | None = None) -> dict:
        """Advance every running session fairly, round-robin.

        ``budget`` is the total interaction budget for this call;
        ``slice_budget`` (default: the manager's checkpoint interval)
        bounds each session's turn, so a long-running session cannot
        starve the others.  Returns per-session advancement counts.
        """
        if budget < 1:
            raise SimulationError(f"pump budget must be positive, got {budget}")
        slice_budget = slice_budget or self.checkpoint_interval
        if slice_budget < 1:
            raise SimulationError(
                f"slice_budget must be positive, got {slice_budget}"
            )
        with self._lock:
            advanced: dict[str, int] = {}
            rounds = 0
            remaining = budget
            while remaining > 0:
                runnable = [
                    sid for sid, ms in self._live.items() if not ms.terminal
                ]
                if not runnable:
                    break
                rounds += 1
                progressed = False
                for sid in runnable:
                    if remaining <= 0:
                        break
                    step = self.advance(sid, min(slice_budget, remaining))
                    got = step["advanced"]
                    advanced[sid] = advanced.get(sid, 0) + got
                    remaining -= got
                    progressed = progressed or got > 0
                if not progressed:
                    break
            return {
                "budget": budget,
                "advanced": budget - remaining,
                "rounds": rounds,
                "sessions": advanced,
            }

    def _advance_free(self, ms: ManagedSession, budget: int | None) -> None:
        """Slice a free-running session into checkpoint-sized chunks."""
        session = ms.session
        remaining = budget
        while not ms.terminal:
            since_last = ms.cursor % ms.checkpoint_interval
            step = ms.checkpoint_interval - since_last
            if remaining is not None:
                step = min(step, remaining)
                if step <= 0:
                    break
            session.advance(step)
            got = session.interactions - ms.cursor
            ms.cursor = session.interactions
            ms.effective = session.effective
            ms.status = session.status
            if remaining is not None:
                remaining -= got
            self._checkpoint(ms)
            if got == 0 and not ms.terminal:
                raise SimulationError(
                    f"session {ms.id!r} made no progress on advance"
                )

    def _advance_driven(self, ms: ManagedSession, budget: int | None) -> None:
        """Replay further schedule pairs through the engine data path.

        The shadow interpreter (the oracle's name-level layout) supplies
        the ordered state pair for each scheduled interaction; the
        engine's own verdict on effectiveness must match the shadow's —
        a mismatch means the compiled data path diverged from the rule
        listing mid-session, which is a hard error here (the conformance
        differ exists to localize those).
        """
        schedule, shadow = ms.schedule, ms.shadow
        assert schedule is not None and shadow is not None
        space = ms.protocol.space
        table = ms.protocol.transitions
        names = space.names
        pred = ms.protocol.stability_predicate(schedule.n)
        stop = len(schedule.pairs)
        if budget is not None:
            stop = min(stop, ms.cursor + budget)
        while ms.cursor < stop:
            a, b = schedule.pairs[ms.cursor]
            p_idx, q_idx = shadow[a], shadow[b]
            p_name, q_name = names[p_idx], names[q_idx]
            p2_name, q2_name = table.apply(p_name, q_name)
            shadow_effective = (p2_name, q2_name) != (p_name, q_name)
            engine_effective = ms.session.apply_scheduled(a, b, p_idx, q_idx)
            if engine_effective != shadow_effective:
                raise SimulationError(
                    f"session {ms.id!r}: engine {ms.engine!r} disagrees with "
                    f"the rule listing at interaction {ms.cursor} "
                    f"(pair ({p_name}, {q_name})); run the conformance "
                    "differ to localize the divergence"
                )
            if shadow_effective:
                shadow[a] = space.index(p2_name)
                shadow[b] = space.index(q2_name)
                ms.effective += 1
            ms.cursor += 1
            if ms.cursor % ms.checkpoint_interval == 0:
                self._checkpoint(ms)
        if ms.cursor >= len(schedule.pairs):
            ms.status = self._driven_terminal_status(ms, pred)
            self._checkpoint(ms)

    def _driven_terminal_status(self, ms: ManagedSession, pred) -> SessionStatus:
        counts = np.asarray(ms.session.counts, dtype=np.int64)
        if pred is not None:
            if pred(list(ms.session.counts)):
                return SessionStatus.CONVERGED
        elif ms.protocol.compiled.is_silent(counts):
            return SessionStatus.CONVERGED
        if ms.protocol.compiled.is_silent(counts):
            return SessionStatus.HALTED
        return SessionStatus.EXHAUSTED

    # ------------------------------------------------------------------
    # Checkpoints, forks, rewind
    # ------------------------------------------------------------------
    def snapshot(self, session_id: str) -> dict:
        """Checkpoint a session at its current cursor, on demand."""
        with self._lock:
            ms = self._require_live(session_id)
            digest, created = self._checkpoint(ms)
            return {
                "session": session_id,
                "interactions": ms.cursor,
                "digest": digest,
                "blob_created": created,
            }

    def _checkpoint(self, ms: ManagedSession) -> tuple[str, bool]:
        driver = None
        if ms.mode == "driven":
            driver = {"shadow": list(ms.shadow or []), "cursor": ms.cursor}
        return self.store.put_snapshot(
            ms.id,
            ms.cursor,
            ms.session.snapshot(),
            effective=ms.effective,
            driver=driver,
        )

    def fork(
        self,
        session_id: str,
        *,
        at: int | None = None,
        child_id: str | None = None,
    ) -> dict:
        """A new session branched from a checkpoint of ``session_id``.

        ``at=None`` forks at the parent's current cursor (checkpointing
        it first if needed); otherwise ``at`` must name a stored
        checkpoint.  Parent and child share the checkpoint blob — the
        store's content addressing makes the fork O(1) in storage.
        """
        with self._lock:
            parent = self._require_live(session_id)
            if at is None:
                at = parent.cursor
                self._checkpoint(parent)
            ckpt = self.store.get_snapshot(session_id, at)
            if ckpt is None:
                stored = [
                    s.interactions for s in self.store.list_snapshots(session_id)
                ]
                raise SimulationError(
                    f"session {session_id!r} has no checkpoint at {at}; "
                    f"stored checkpoints: {stored}"
                )
            cid = child_id or f"s-{uuid.uuid4().hex[:12]}"
            child = self._build(cid, dict(parent.config))
            self._restore_into(child, ckpt)
            self.store.create_session(
                cid,
                engine=child.engine,
                protocol=child.protocol.name,
                fingerprint=protocol_fingerprint(child.protocol),
                config=child.config,
                mode=child.mode,
                parent_id=session_id,
                parent_interactions=at,
                cursor=child.cursor,
                effective=child.effective,
            )
            self.store.put_snapshot(
                cid,
                ckpt.interactions,
                ckpt.payload,
                effective=ckpt.effective,
                driver=ckpt.driver,
            )
            self.store.update_session(cid, status=child.status.value)
            self._live[cid] = child
            self._update_gauge()
            return self.status(cid)

    def rewind(self, session_id: str, at: int) -> dict:
        """Time-travel a session back to a stored checkpoint.

        ``at`` must be exactly checkpointed (use :meth:`snapshots` to
        see what is).  After a rewind the session re-advances normally —
        driven sessions bit-identically, free sessions continuing the
        exact RNG stream the checkpoint captured.
        """
        with self._lock:
            ms = self._require_live(session_id)
            ckpt = self.store.get_snapshot(session_id, at)
            if ckpt is None:
                stored = [
                    s.interactions for s in self.store.list_snapshots(session_id)
                ]
                raise SimulationError(
                    f"session {session_id!r} has no checkpoint at {at}; "
                    f"stored checkpoints: {stored}"
                )
            self._restore_into(ms, ckpt)
            self.store.update_session(
                session_id,
                status=ms.status.value,
                cursor=ms.cursor,
                effective=ms.effective,
            )
            self._update_gauge()
            return self.status(session_id)

    def _restore_into(self, ms: ManagedSession, ckpt: Checkpoint) -> None:
        ms.session.restore(ckpt.payload)
        ms.cursor = ckpt.interactions
        ms.effective = ckpt.effective
        ms.result_record = None
        if ms.mode == "driven":
            if ckpt.driver is None:
                raise SimulationError(
                    f"checkpoint at {ckpt.interactions} has no driver sidecar; "
                    "it was not taken from a driven session"
                )
            ms.shadow = [int(s) for s in ckpt.driver["shadow"]]
            assert ms.schedule is not None
            if ms.cursor >= len(ms.schedule.pairs):
                ms.status = self._driven_terminal_status(
                    ms, ms.protocol.stability_predicate(ms.schedule.n)
                )
            else:
                ms.status = SessionStatus.RUNNING
        else:
            ms.status = ms.session.status

    # ------------------------------------------------------------------
    # Introspection and results
    # ------------------------------------------------------------------
    def _require_live(self, session_id: str) -> ManagedSession:
        ms = self._live.get(session_id)
        if ms is None:
            if self.store.get_session(session_id) is not None:
                self.attach(session_id)
                return self._live[session_id]
            raise SimulationError(f"no session {session_id!r}")
        return ms

    def sessions(self) -> list[dict]:
        """Status payloads for every non-deleted stored session."""
        with self._lock:
            return [self.status(row.id) for row in self.store.list_sessions()]

    def status(self, session_id: str) -> dict:
        """One session's full status (the GET /sessions/<id> payload)."""
        with self._lock:
            ms = self._live.get(session_id)
            row = self.store.require_session(session_id)
            status = ms.status.value if ms is not None else row.status
            cursor = ms.cursor if ms is not None else row.cursor
            effective = ms.effective if ms is not None else row.effective
            payload = {
                "id": session_id,
                "engine": row.engine,
                "protocol": row.protocol,
                "mode": row.mode,
                "status": status,
                "interactions": cursor,
                "effective": effective,
                "live": ms is not None,
                "config_digest": config_digest(row.config),
                "lineage": [
                    {"id": ancestor, "forked_at": fork_at}
                    for ancestor, fork_at in self.store.lineage(session_id)
                ],
                "snapshots": len(self.store.list_snapshots(session_id)),
            }
            if ms is not None and ms.mode == "driven":
                assert ms.schedule is not None
                payload["schedule_length"] = len(ms.schedule.pairs)
            return payload

    def snapshots(self, session_id: str) -> list[dict]:
        """The stored checkpoint index for one session."""
        with self._lock:
            self.store.require_session(session_id)
            return [
                {
                    "interactions": s.interactions,
                    "effective": s.effective,
                    "digest": s.digest,
                    "size": s.size,
                }
                for s in self.store.list_snapshots(session_id)
            ]

    def result(self, session_id: str) -> dict:
        """The terminal :class:`SimulationResult` as a record dict.

        Free sessions return the engine session's own result; driven
        sessions return a manager-assembled result (the engine counters
        idle at zero under driven execution, so the manager's cursor is
        the interaction count).
        """
        with self._lock:
            ms = self._require_live(session_id)
            if not ms.terminal:
                raise SimulationError(
                    f"session {session_id!r} is still running; "
                    "advance it to completion first"
                )
            if ms.result_record is None:
                if ms.mode == "free":
                    ms.result_record = ms.session.result().to_record()
                else:
                    ms.result_record = self._driven_result(ms).to_record()
            return dict(ms.result_record)

    def _driven_result(self, ms: ManagedSession) -> SimulationResult:
        assert ms.schedule is not None
        final = np.asarray(ms.session.counts, dtype=np.int64)
        return SimulationResult(
            protocol=ms.protocol.name,
            n=ms.schedule.n,
            engine=ms.engine,
            interactions=ms.cursor,
            effective_interactions=ms.effective,
            converged=ms.status is SessionStatus.CONVERGED,
            silent=bool(ms.protocol.compiled.is_silent(final)),
            final_counts=final,
            group_sizes=Engine._group_sizes_or_empty(ms.protocol, final),
            tracked_milestones=[],
            elapsed=0.0,
        )

    def counts_at(self, session_id: str, t: int) -> list[int]:
        """The count vector after interaction ``t`` (driven sessions).

        The bisector's probe: restores the nearest stored checkpoint at
        or before ``t`` into a scratch session and drives the schedule
        window forward — O(checkpoint interval) work per probe instead
        of O(t).  The live session is never disturbed.
        """
        with self._lock:
            row = self.store.require_session(session_id)
            if row.mode != "driven":
                raise SimulationError(
                    f"counts_at needs a driven session; {session_id!r} is "
                    f"mode {row.mode!r}"
                )
            ckpt = self.store.nearest_snapshot(session_id, t)
            if ckpt is None:
                raise SimulationError(
                    f"session {session_id!r} has no checkpoint at or before {t}"
                )
            scratch = self._build(f"probe-{session_id}", dict(row.config))
            self._restore_into(scratch, ckpt)
            assert scratch.schedule is not None
            if t > len(scratch.schedule.pairs):
                raise SimulationError(
                    f"t={t} is beyond the schedule "
                    f"({len(scratch.schedule.pairs)} interactions)"
                )
            scratch.status = SessionStatus.RUNNING
            if t > scratch.cursor:
                self._drive_scratch(scratch, t)
            return list(scratch.session.counts)

    def _drive_scratch(self, ms: ManagedSession, stop: int) -> None:
        """Drive a probe session forward without checkpointing."""
        schedule, shadow = ms.schedule, ms.shadow
        assert schedule is not None and shadow is not None
        space = ms.protocol.space
        table = ms.protocol.transitions
        names = space.names
        while ms.cursor < stop:
            a, b = schedule.pairs[ms.cursor]
            p_idx, q_idx = shadow[a], shadow[b]
            p2_name, q2_name = table.apply(names[p_idx], names[q_idx])
            if ms.session.apply_scheduled(a, b, p_idx, q_idx):
                shadow[a] = space.index(p2_name)
                shadow[b] = space.index(q2_name)
                ms.effective += 1
            ms.cursor += 1

    def gc(self, *, keep_every: int | None = None) -> dict:
        """Garbage-collect dominated checkpoints (see the store's gc)."""
        with self._lock:
            for ms in self._live.values():
                self._checkpoint(ms)
            return self.store.gc(keep_every=keep_every)

    def _update_gauge(self) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            active = sum(1 for ms in self._live.values() if not ms.terminal)
            telemetry.gauge("sessiond.sessions.active").set(active)
