"""The ``repro-experiments session`` command family.

Verbs::

    session create    # new session (free-running or schedule-driven)
    session advance   # push one session forward by a budget
    session snapshot  # checkpoint a session right now
    session fork      # branch a new session off a stored checkpoint
    session rewind    # time-travel a session back to a checkpoint
    session result    # terminal SimulationResult of a finished session
    session bisect    # first divergent interaction of two sessions
    session ls        # sessions in a store (or one session's checkpoints)
    session gc        # drop dominated checkpoints, report bytes freed
    session serve     # run the HTTP daemon over a store

Every verb except ``serve`` operates directly on the store file — the
store is the source of truth, so a daemon and the CLI can share one
database (WAL mode keeps them consistent).  Commands print one JSON
document to stdout, so shell pipelines and the CI smoke job can parse
outcomes without scraping.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _parse_param(text: str) -> tuple[str, object]:
    key, _, raw = text.partition("=")
    if not key or not raw:
        raise SystemExit(f"--param expects KEY=VALUE, got {text!r}")
    if "," in raw:
        return key, tuple(int(v) for v in raw.split(","))
    try:
        return key, int(raw)
    except ValueError:
        return key, raw


def build_session_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments session",
        description="live attachable simulations over a snapshot store",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            required=True,
            metavar="DB",
            help="snapshot-store SQLite path (created if missing)",
        )

    create = sub.add_parser("create", help="create a new session")
    add_store(create)
    create.add_argument("--id", default=None, help="session id (default: random)")
    create.add_argument("--protocol", default="uniform-k-partition")
    create.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="protocol parameter, e.g. --param k=3 (repeatable)",
    )
    create.add_argument("--engine", default="count")
    create.add_argument(
        "--mode",
        choices=("free", "driven"),
        default="free",
        help="free: engine randomness; driven: replay a recorded schedule",
    )
    create.add_argument("--n", type=int, default=300)
    create.add_argument("--seed", type=int, default=0)
    create.add_argument(
        "--max-interactions",
        type=int,
        default=None,
        help="run budget (free mode) / schedule recording budget (driven)",
    )
    create.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help="automatic checkpoint cadence in interactions",
    )
    create.add_argument(
        "--schedule",
        default=None,
        metavar="FILE",
        help="driven mode: JSON schedule record to replay "
        "(default: record one fresh from the pristine protocol)",
    )
    create.add_argument(
        "--mutate-rule",
        type=int,
        default=None,
        metavar="RULE",
        help="corrupt one transition rule (conform.mutation) — the "
        "seeded-bug hook for bisection; the replayed schedule is still "
        "recorded from the pristine protocol",
    )

    advance = sub.add_parser("advance", help="advance one session")
    add_store(advance)
    advance.add_argument("id")
    advance.add_argument(
        "--budget",
        type=int,
        default=None,
        help="max interactions this call (default: run to the end)",
    )

    snapshot = sub.add_parser("snapshot", help="checkpoint a session now")
    add_store(snapshot)
    snapshot.add_argument("id")

    fork = sub.add_parser("fork", help="branch a session off a checkpoint")
    add_store(fork)
    fork.add_argument("id")
    fork.add_argument(
        "--at",
        type=int,
        default=None,
        help="checkpointed interaction count (default: current cursor)",
    )
    fork.add_argument("--child-id", default=None)

    rewind = sub.add_parser("rewind", help="time-travel back to a checkpoint")
    add_store(rewind)
    rewind.add_argument("id")
    rewind.add_argument("--at", type=int, required=True)

    result = sub.add_parser("result", help="terminal result of a session")
    add_store(result)
    result.add_argument("id")

    bisect = sub.add_parser(
        "bisect", help="first divergent interaction of two driven sessions"
    )
    add_store(bisect)
    bisect.add_argument("a")
    bisect.add_argument("b")
    bisect.add_argument(
        "--reproducer-dir",
        default=None,
        metavar="DIR",
        help="dump a minimal-reproducer trace there on divergence",
    )

    ls = sub.add_parser("ls", help="list sessions, or one session's checkpoints")
    add_store(ls)
    ls.add_argument("id", nargs="?", default=None)

    gc = sub.add_parser("gc", help="drop dominated checkpoints")
    add_store(gc)
    gc.add_argument(
        "--keep-every",
        type=int,
        default=None,
        help="also keep checkpoints on this interaction grid",
    )

    serve = sub.add_parser("serve", help="run the HTTP session daemon")
    add_store(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--checkpoint-interval", type=int, default=None)
    return parser


def _manager(args: argparse.Namespace):
    from .manager import SessionManager

    kwargs = {}
    if getattr(args, "checkpoint_interval", None) is not None:
        kwargs["checkpoint_interval"] = args.checkpoint_interval
    return SessionManager(args.store, **kwargs)


def _emit(payload: dict | list) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_create(args: argparse.Namespace) -> int:
    config: dict = {
        "protocol": args.protocol,
        "params": dict(_parse_param(p) for p in args.param),
        "engine": args.engine,
        "mode": args.mode,
    }
    if args.protocol in ("uniform-k-partition", "approx-k-partition"):
        config["params"].setdefault("k", 3)
    if args.mutate_rule is not None:
        config["mutate_rule"] = args.mutate_rule
    if args.checkpoint_interval is not None:
        config["checkpoint_interval"] = args.checkpoint_interval
    if args.mode == "driven":
        if args.schedule is not None:
            config["schedule"] = json.loads(Path(args.schedule).read_text())
        else:
            from ..conform.schedule import record_schedule
            from ..protocols.registry import build_protocol

            pristine = build_protocol(args.protocol, **config["params"])
            schedule = record_schedule(
                pristine,
                args.n,
                seed=args.seed,
                max_interactions=args.max_interactions or 2_000_000,
            )
            config["schedule"] = schedule.to_record()
    else:
        config["n"] = args.n
        config["seed"] = args.seed
        if args.max_interactions is not None:
            config["max_interactions"] = args.max_interactions
    manager = _manager(args)
    try:
        _emit(manager.create(config, session_id=args.id))
    finally:
        manager.close()
    return 0


def _cmd_simple(args: argparse.Namespace) -> int:
    manager = _manager(args)
    try:
        if args.verb == "advance":
            _emit(manager.advance(args.id, args.budget))
        elif args.verb == "snapshot":
            _emit(manager.snapshot(args.id))
        elif args.verb == "fork":
            _emit(manager.fork(args.id, at=args.at, child_id=args.child_id))
        elif args.verb == "rewind":
            _emit(manager.rewind(args.id, args.at))
        elif args.verb == "result":
            _emit(manager.result(args.id))
        elif args.verb == "ls":
            if args.id is None:
                _emit(
                    {
                        "store": manager.store.stats(),
                        "sessions": manager.sessions(),
                    }
                )
            else:
                _emit(
                    {
                        "session": manager.status(args.id),
                        "snapshots": manager.snapshots(args.id),
                    }
                )
        elif args.verb == "gc":
            _emit(manager.gc(keep_every=args.keep_every))
    finally:
        manager.close()
    return 0


def _cmd_bisect(args: argparse.Namespace) -> int:
    from .bisect import bisect_divergence

    manager = _manager(args)
    try:
        report = bisect_divergence(
            manager, args.a, args.b, reproducer_dir=args.reproducer_dir
        )
    finally:
        manager.close()
    print(report.summary(), file=sys.stderr)
    _emit(report.to_record())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SessionService

    service = SessionService(
        args.store,
        args.host,
        args.port,
        checkpoint_interval=args.checkpoint_interval,
    )
    print(f"sessiond listening on {service.url} (store: {args.store})")
    service.serve_forever()
    return 0


def session_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-experiments session ...``."""
    args = build_session_parser().parse_args(argv)
    if args.verb == "create":
        return _cmd_create(args)
    if args.verb == "bisect":
        return _cmd_bisect(args)
    if args.verb == "serve":
        return _cmd_serve(args)
    return _cmd_simple(args)
