"""Simulation-as-a-service: live sessions, snapshots, time travel.

The session daemon turns the resumable engine core into a product
surface: long-lived simulations are created, advanced in slices,
checkpointed into a content-addressed SQLite store, forked at any
checkpoint, rewound (time travel), and bisected against each other to
localize the first divergent interaction — over Python APIs, a CLI
(``repro-experiments session ...``), or a stdlib HTTP daemon.

Layers:

* :mod:`repro.sessiond.store` — durable, content-addressed snapshot
  store with session lineage and GC of dominated checkpoints.
* :mod:`repro.sessiond.manager` — live :class:`EngineSession` objects
  over the store: create/advance/fork/rewind/attach, free-running or
  driven by a recorded :class:`InteractionSchedule`.
* :mod:`repro.sessiond.bisect` — checkpoint-accelerated binary search
  for the first interaction where two sessions diverge.
* :mod:`repro.sessiond.service` / :mod:`repro.sessiond.cli` — the HTTP
  daemon and the command-line verbs.
"""

from .bisect import BisectReport, bisect_divergence
from .manager import DRIVEN_ENGINES, ManagedSession, SessionManager, config_digest
from .service import SessionService
from .store import Checkpoint, SessionRow, SnapshotRow, SnapshotStore

__all__ = [
    "BisectReport",
    "bisect_divergence",
    "Checkpoint",
    "config_digest",
    "DRIVEN_ENGINES",
    "ManagedSession",
    "SessionManager",
    "SessionRow",
    "SessionService",
    "SnapshotRow",
    "SnapshotStore",
]
