"""Conformance: cross-engine differential testing and invariant enforcement.

Five engine implementations (agent, batch, count, hybrid, ensemble)
share one transition semantics; every performance PR re-derives it.
This subsystem makes the agreement *checkable* instead of hoped-for:

* :mod:`repro.conform.invariants` — a pluggable pack of runtime
  invariants (the paper's Lemma 1 conserved quantity, population
  conservation, the ``#g_1 >= ... >= #g_k`` staircase, ``|M| + |D|``
  cardinality bounds, stable-signature uniqueness per Lemmas 4-6)
  attachable to any engine through the ``on_effective`` callback;
* :mod:`repro.conform.schedule` — recorded interaction schedules from
  a compilation-free reference interpreter, replayable and
  JSON-serializable (the minimal-reproducer format);
* :mod:`repro.conform.differ` — a lockstep differential executor that
  replays one schedule through each engine's own transition-application
  data path and diffs the count vectors step by step, dumping a
  reproducer via :class:`~repro.obs.trace.TraceWriter` on first
  divergence;
* :mod:`repro.conform.fuzzer` — a seed-corpus fuzzer sweeping
  (protocol, n, engine, scheduler) across the registry hunting for
  invariant violations and cross-engine splits;
* :mod:`repro.conform.mutation` — transition-table mutation and the
  self-test proving the harness actually catches planted bugs;
* :mod:`repro.conform.runtime` — the ``--conform`` debug-flag hook the
  experiment/campaign CLIs install so every ``run_trials`` result is
  conformance-checked in production sweeps.

CLI: ``repro-experiments conform {diff,fuzz,check}``; see
``docs/conformance.md``.
"""

from .differ import ENGINE_PATHS, DiffReport, Divergence, run_differential
from .fuzzer import FuzzCase, FuzzFinding, default_corpus, run_fuzz
from .invariants import (
    ConformanceMonitor,
    Invariant,
    invariant_pack,
    check_counts,
)
from .mutation import mutate_protocol, self_test
from .runtime import active_conformance, check_result, use_conformance
from .schedule import InteractionSchedule, record_schedule

__all__ = [
    "ENGINE_PATHS",
    "Invariant",
    "invariant_pack",
    "check_counts",
    "ConformanceMonitor",
    "InteractionSchedule",
    "record_schedule",
    "DiffReport",
    "Divergence",
    "run_differential",
    "FuzzCase",
    "FuzzFinding",
    "default_corpus",
    "run_fuzz",
    "mutate_protocol",
    "self_test",
    "use_conformance",
    "active_conformance",
    "check_result",
]
