"""Recorded interaction schedules and the compilation-free reference run.

A schedule is the ground truth of one execution: the ordered list of
(initiator, responder) agent indices that interacted.  The recorder is
deliberately the *slowest, most obviously correct* interpreter in the
library — it applies :meth:`~repro.core.transitions.TransitionTable.apply`
on state **names**, bypassing the compiled tables every engine uses.
That makes it an independent oracle: replaying a recorded schedule
through the engines' own data paths (see :mod:`repro.conform.differ`)
cross-checks the whole compilation pipeline against the paper's rule
listing.

Schedules serialize to JSON-safe records, which is also the
minimal-reproducer format the differ dumps on divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..core.errors import SimulationError
from ..core.protocol import Protocol
from ..core.rng import SeedLike, ensure_generator
from ..scheduling.base import Scheduler
from ..scheduling.uniform import UniformScheduler

__all__ = ["InteractionSchedule", "record_schedule"]

_BLOCK = 1024


@dataclass(slots=True)
class InteractionSchedule:
    """One recorded execution: pairs, plus the configurations they produced.

    ``pairs`` holds every scheduled interaction (null ones included —
    the engines' compiled tables must agree a pair is null, too).
    ``effective_steps`` marks the indices into ``pairs`` that changed
    some state, and ``final_counts`` is the reference interpreter's
    terminal configuration.
    """

    protocol: str
    n: int
    seed: int | None
    pairs: list[tuple[int, int]]
    effective_steps: list[int]
    initial_counts: list[int]
    final_counts: list[int]
    converged: bool
    meta: dict = field(default_factory=dict)

    @property
    def interactions(self) -> int:
        return len(self.pairs)

    @property
    def effective_interactions(self) -> int:
        return len(self.effective_steps)

    def prefix(self, steps: int) -> "InteractionSchedule":
        """The first ``steps`` interactions (a minimal-reproducer cut)."""
        steps = max(0, min(steps, len(self.pairs)))
        return InteractionSchedule(
            protocol=self.protocol,
            n=self.n,
            seed=self.seed,
            pairs=self.pairs[:steps],
            effective_steps=[s for s in self.effective_steps if s < steps],
            initial_counts=list(self.initial_counts),
            final_counts=list(self.final_counts),
            converged=False,
            meta=dict(self.meta, truncated_at=steps),
        )

    def slice(self, start: int, stop: int) -> "InteractionSchedule":
        """The window ``pairs[start:stop]`` as a standalone schedule.

        The bisector restores a mid-run checkpoint and drives forward
        from there, so it needs windows that start *inside* the run,
        not just prefix cuts.  ``effective_steps`` is re-based to the
        window (step ``s`` becomes ``s - start``).  ``initial_counts``
        is carried over only when ``start == 0`` and ``final_counts``
        only when ``stop`` reaches the end — a mid-run window cannot
        know either without a replay, and leaves them empty instead of
        lying.  The original coordinates are recorded in
        ``meta["window"]``.
        """
        start = max(0, min(start, len(self.pairs)))
        stop = max(start, min(stop, len(self.pairs)))
        at_end = stop == len(self.pairs)
        return InteractionSchedule(
            protocol=self.protocol,
            n=self.n,
            seed=self.seed,
            pairs=self.pairs[start:stop],
            effective_steps=[
                s - start for s in self.effective_steps if start <= s < stop
            ],
            initial_counts=list(self.initial_counts) if start == 0 else [],
            final_counts=list(self.final_counts) if at_end else [],
            converged=self.converged and at_end,
            meta=dict(self.meta, window=[start, stop]),
        )

    def to_record(self) -> dict:
        """JSON-safe serialization (the reproducer format)."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "seed": self.seed,
            "pairs": [[int(a), int(b)] for a, b in self.pairs],
            "effective_steps": [int(s) for s in self.effective_steps],
            "initial_counts": [int(c) for c in self.initial_counts],
            "final_counts": [int(c) for c in self.final_counts],
            "converged": bool(self.converged),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_record(cls, record: dict) -> "InteractionSchedule":
        """Inverse of :meth:`to_record`."""
        return cls(
            protocol=record["protocol"],
            n=record["n"],
            seed=record["seed"],
            pairs=[(int(a), int(b)) for a, b in record["pairs"]],
            effective_steps=[int(s) for s in record["effective_steps"]],
            initial_counts=[int(c) for c in record["initial_counts"]],
            final_counts=[int(c) for c in record["final_counts"]],
            converged=bool(record["converged"]),
            meta=dict(record.get("meta", {})),
        )


def record_schedule(
    protocol: Protocol,
    n: int | None = None,
    *,
    seed: SeedLike = None,
    initial_counts: Sequence[int] | np.ndarray | None = None,
    max_interactions: int = 2_000_000,
    scheduler: Scheduler | None = None,
) -> InteractionSchedule:
    """Run the reference interpreter and record every scheduled pair.

    The interpreter keeps per-agent state *names* and applies the
    transition table directly — no compiled tables, no interaction
    classes, no weight bookkeeping.  Stops at the protocol's stability
    predicate (silence when there is none) or at ``max_interactions``,
    which is mandatory and finite here: a recorded schedule must be
    materializable, so unbounded runs are a usage error.
    """
    if max_interactions < 0:
        raise SimulationError(
            f"max_interactions must be non-negative, got {max_interactions}"
        )
    if initial_counts is not None:
        counts0 = np.asarray(initial_counts, dtype=np.int64)
        if counts0.shape != (protocol.num_states,):
            raise SimulationError(
                f"initial_counts has shape {counts0.shape}, "
                f"expected ({protocol.num_states},)"
            )
        if n is not None and int(counts0.sum()) != n:
            raise SimulationError(
                f"initial_counts sums to {int(counts0.sum())} but n = {n}"
            )
    else:
        if n is None:
            raise SimulationError("supply either n or initial_counts")
        counts0 = protocol.initial_counts(n)
    n_total = int(counts0.sum())
    if n_total < 2:
        raise SimulationError("need at least two agents to interact")

    space = protocol.space
    table = protocol.transitions
    states: list[str] = []
    for idx, c in enumerate(counts0.tolist()):
        states.extend([space.names[idx]] * c)
    counts: list[int] = counts0.tolist()

    pred = protocol.stability_predicate(n_total)

    def is_stable() -> bool:
        if pred is not None:
            return bool(pred(counts))
        return protocol.compiled.is_silent(np.asarray(counts, dtype=np.int64))

    rng = ensure_generator(seed)
    if scheduler is None:
        scheduler = UniformScheduler(n_total, rng)

    pairs: list[tuple[int, int]] = []
    effective_steps: list[int] = []
    converged = is_stable()
    while not converged and len(pairs) < max_interactions:
        take = min(_BLOCK, max_interactions - len(pairs))
        a_arr, b_arr = scheduler.next_block(take)
        for a, b in zip(a_arr.tolist(), b_arr.tolist()):
            pairs.append((a, b))
            p, q = states[a], states[b]
            p2, q2 = table.apply(p, q)
            if (p2, q2) == (p, q):
                continue
            states[a] = p2
            states[b] = q2
            counts[space.index(p)] -= 1
            counts[space.index(q)] -= 1
            counts[space.index(p2)] += 1
            counts[space.index(q2)] += 1
            effective_steps.append(len(pairs) - 1)
            if is_stable():
                converged = True
                break

    return InteractionSchedule(
        protocol=protocol.name,
        n=n_total,
        seed=seed if isinstance(seed, int) else None,
        pairs=pairs,
        effective_steps=effective_steps,
        initial_counts=counts0.tolist(),
        final_counts=list(counts),
        converged=converged,
    )
