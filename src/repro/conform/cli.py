"""The ``repro-experiments conform`` command family.

Three verbs::

    conform diff   # lockstep differential replay through all engines
    conform fuzz   # fixed-seed corpus sweep across the registry
    conform check  # harness self-test / conformance-checked trials

``diff`` defaults to the acceptance configuration (uniform k-partition,
k = 3, n = 300, all eight engine paths) and exits non-zero on any
divergence.  ``fuzz`` runs :func:`~repro.conform.fuzzer.default_corpus`
and exits non-zero if any finding survives.  ``check --self-test``
plants a corrupted transition-table entry and exits non-zero unless
both the differ and the invariant pack catch it; without
``--self-test`` it runs trials under the conformance runtime and
reports violations of the final configurations.
"""

from __future__ import annotations

import argparse
import sys


def _build(protocol: str, raw_params: list[str]):
    """Build a registry protocol, defaulting ``k=3`` where one is needed."""
    from ..protocols.registry import build_protocol

    params = dict(_parse_param(p) for p in raw_params)
    if protocol in (
        "uniform-k-partition", "approx-k-partition", "weak-k-partition"
    ):
        params.setdefault("k", 3)
    return build_protocol(protocol, **params)


def _scheduler_spec(text: str):
    """argparse type for --scheduler: fail at parse time, not mid-run."""
    from ..core.errors import SchedulerError
    from ..scheduling.spec import SchedulerSpec

    try:
        return SchedulerSpec.parse(text)
    except SchedulerError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_param(text: str) -> tuple[str, object]:
    key, _, raw = text.partition("=")
    if not key or not raw:
        raise SystemExit(f"--param expects KEY=VALUE, got {text!r}")
    if "," in raw:
        return key, tuple(int(v) for v in raw.split(","))
    try:
        return key, int(raw)
    except ValueError:
        return key, raw


def build_conform_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments conform",
        description="cross-engine differential testing and invariant checks",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    diff = sub.add_parser(
        "diff",
        help="replay one recorded schedule through every engine data path",
    )
    diff.add_argument("--protocol", default="uniform-k-partition")
    diff.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="protocol parameter, e.g. --param k=3 (repeatable)",
    )
    diff.add_argument("--n", type=int, default=300)
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument(
        "--scheduler",
        default=None,
        type=_scheduler_spec,
        metavar="SPEC",
        help=(
            "record the schedule under a named scheduler, e.g. "
            "graph:cycle, graph:regular:4, roundrobin (default: uniform)"
        ),
    )
    diff.add_argument(
        "--engines",
        default=None,
        metavar="A,B,...",
        help="engine paths to replicate (default: all eight)",
    )
    diff.add_argument(
        "--max-interactions",
        type=int,
        default=2_000_000,
        help="schedule recording budget (the run stops at stability)",
    )
    diff.add_argument(
        "--stride",
        type=int,
        default=1,
        help="compare count vectors every Nth effective step",
    )
    diff.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the invariant pack on the oracle trajectory",
    )
    diff.add_argument(
        "--reproducer-dir",
        default=None,
        metavar="DIR",
        help="dump a JSONL reproducer trace there on divergence",
    )

    fuzz = sub.add_parser(
        "fuzz", help="run the fixed-seed conformance corpus"
    )
    fuzz.add_argument(
        "--seed", type=int, default=20240801, help="corpus base seed"
    )
    fuzz.add_argument(
        "--reproducer-dir",
        default=None,
        metavar="DIR",
        help="dump JSONL reproducer traces there on divergence",
    )
    fuzz.add_argument(
        "--quiet", action="store_true", help="only print findings"
    )

    check = sub.add_parser(
        "check",
        help="harness self-test, or conformance-checked trial runs",
    )
    check.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "corrupt one transition-table entry and verify the differ "
            "and the invariant pack both catch it (exit 1 otherwise)"
        ),
    )
    check.add_argument("--protocol", default="uniform-k-partition")
    check.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE"
    )
    check.add_argument("--n", type=int, default=60)
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--trials", type=int, default=20)
    check.add_argument("--engine", default="count")
    check.add_argument(
        "--max-interactions", type=int, default=2_000_000
    )
    return parser


def _cmd_diff(args: argparse.Namespace) -> int:
    from .differ import run_differential

    protocol = _build(args.protocol, args.param)
    engines = args.engines.split(",") if args.engines else None
    report = run_differential(
        protocol,
        args.n,
        seed=args.seed,
        scheduler=args.scheduler,
        engines=engines,
        max_interactions=args.max_interactions,
        check_invariants=not args.no_invariants,
        reproducer_dir=args.reproducer_dir,
        stride=args.stride,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzzer import default_corpus, run_fuzz

    cases = default_corpus(seed=args.seed)
    log = None if args.quiet else lambda line: print(line, file=sys.stderr)
    findings = run_fuzz(
        cases, reproducer_dir=args.reproducer_dir, log=log
    )
    if not findings:
        print(f"fuzz: {len(cases)} case(s), no findings")
        return 0
    print(f"fuzz: {len(findings)} finding(s) over {len(cases)} case(s)")
    for f in findings:
        print("  " + f.summary())
    return 1


def _cmd_check(args: argparse.Namespace) -> int:
    if args.self_test:
        from .mutation import self_test

        failures = self_test()
        if failures:
            print(f"self-test FAILED ({len(failures)} problem(s)):")
            for failure in failures:
                print("  " + failure)
            return 1
        print(
            "self-test passed: pristine protocol conforms; the differ and "
            "the invariant pack both catch a corrupted transition-table entry"
        )
        return 0

    from ..engine.runner import run_trials
    from .runtime import use_conformance

    protocol = _build(args.protocol, args.param)
    with use_conformance(strict=False) as rt:
        ts = run_trials(
            protocol,
            args.n,
            trials=args.trials,
            engine=args.engine,
            seed=args.seed,
            max_interactions=args.max_interactions,
        )
    print(ts.summary())
    if rt.violations:
        print(f"conformance: {len(rt.violations)} violation(s):")
        for v in rt.violations:
            print("  " + v)
        return 1
    print(
        f"conformance: {rt.results_checked} final configuration(s) checked, "
        "no violations"
    )
    return 0


def conform_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-experiments conform ...``."""
    args = build_conform_parser().parse_args(argv)
    if args.verb == "diff":
        return _cmd_diff(args)
    if args.verb == "fuzz":
        return _cmd_fuzz(args)
    return _cmd_check(args)
