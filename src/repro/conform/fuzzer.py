"""Seed-corpus conformance fuzzing across the protocol registry.

Each :class:`FuzzCase` fixes one (protocol, parameters, n, seed,
scheduler) point; :func:`run_fuzz` subjects it to three independent
checks:

1. **differential** — record a schedule and replay it through every
   engine data path (:func:`~repro.conform.differ.run_differential`),
   with the invariant pack enforced on the oracle trajectory;
2. **scheduler sweep** — run the agent engine under the case's
   scheduler with a :class:`~repro.conform.invariants.ConformanceMonitor`
   attached: the paper's invariants are properties of *reachable
   configurations* and must hold under any scheduler, fair or not
   (convergence is deliberately not required here — the round-robin
   scheduler exists precisely because the protocol may livelock under
   it);
3. **cross-engine split** — run every real engine independently at the
   case's seed and compare final group sizes among the runs that
   converged.  The engines are only distributionally equal, but
   protocols with a unique stable signature (Lemmas 4-6) must agree on
   the output partition whenever they converge at all.

Every run carries an explicit ``max_interactions`` budget: some
parameter points (e.g. k-partition with ``n = 2``, where rules 1-2
flip both agents in lockstep and rule 5 can never fire) provably never
stabilize, and a fuzzer that can hang is worse than no fuzzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Sequence

from ..analysis.invariants import InvariantViolation
from ..core.errors import SchedulerError
from ..core.protocol import Protocol
from ..engine.agent_based import AgentBasedEngine
from ..engine.registry import build_engine
from ..protocols.registry import build_protocol
from ..scheduling.adversarial import RoundRobinScheduler, StickyScheduler
from ..scheduling.spec import SchedulerSpec
from ..scheduling.uniform import UniformScheduler
from .differ import run_differential
from .invariants import ConformanceMonitor, invariant_pack

__all__ = ["FuzzCase", "FuzzFinding", "default_corpus", "run_fuzz"]

#: Scheduler factories the fuzzer knows, keyed by the name a
#: :class:`FuzzCase` carries.  All take ``(n, rng)``.  Names that parse
#: as a :class:`~repro.scheduling.spec.SchedulerSpec` (``graph:*``,
#: ``round-robin``) additionally drive scheduler-aware differential
#: recording; ``sticky`` is fuzzer-only and records uniform.
SCHEDULERS: dict[str, Callable] = {
    "uniform": UniformScheduler,
    "sticky": lambda n, rng: StickyScheduler(n, 0.7, rng),
    "round-robin": RoundRobinScheduler,
    "graph:complete": SchedulerSpec.parse("graph:complete").build,
    "graph:cycle": SchedulerSpec.parse("graph:cycle").build,
    "graph:regular:4": SchedulerSpec.parse("graph:regular:4").build,
}


@dataclass(slots=True)
class FuzzCase:
    """One point of the conformance corpus."""

    protocol: str
    n: int
    seed: int
    params: dict = field(default_factory=dict)
    scheduler: str = "uniform"
    #: True when the protocol has a unique stable output partition, so
    #: converged engines must agree on group sizes (Lemmas 4-6 family).
    deterministic_output: bool = True
    max_interactions: int = 100_000

    def label(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in sorted(self.params.items()))
        return (
            f"{self.protocol}{extra} n={self.n} seed={self.seed} "
            f"sched={self.scheduler}"
        )

    def build(self) -> Protocol:
        return build_protocol(self.protocol, **self.params)


@dataclass(slots=True)
class FuzzFinding:
    """One confirmed disagreement or violation."""

    case: FuzzCase
    #: "divergence" | "invariant" | "engine-split" | "error"
    kind: str
    detail: str
    reproducer_path: str | None = None

    def summary(self) -> str:
        line = f"[{self.kind}] {self.case.label()}: {self.detail}"
        if self.reproducer_path:
            line += f" (reproducer: {self.reproducer_path})"
        return line


def default_corpus(*, seed: int = 20240801) -> list[FuzzCase]:
    """The fixed-seed corpus the CI smoke job runs.

    Sweeps the k-partition protocol over the edge regimes of Lemmas
    4-6 — ``k = 2``, ``n = k`` (all groups singletons), ``n mod k = 1``
    (the stable-but-not-silent free agent) and ``n mod k >= 2`` — plus
    one point per other registry protocol with a designated initial
    state.  Seeds are derived deterministically from ``seed`` so the
    corpus is reproducible run to run.
    """
    cases: list[FuzzCase] = []
    counter = 0

    def add(**kwargs: object) -> None:
        nonlocal counter
        cases.append(FuzzCase(seed=seed + counter, **kwargs))  # type: ignore[arg-type]
        counter += 1

    for k, n in [
        (2, 2 + 1),      # smallest workable population
        (2, 8),          # r = 0
        (3, 3),          # n = k: every group a singleton
        (3, 7),          # r = 1: stable but not silent
        (3, 8),          # r = 2: one m_r survivor
        (4, 4 + 1),      # n = k + 1
        (5, 23),         # r = 3 at moderate size
    ]:
        add(protocol="uniform-k-partition", params={"k": k}, n=n)
    add(protocol="uniform-k-partition", params={"k": 3}, n=10, scheduler="sticky")
    add(
        protocol="uniform-k-partition",
        params={"k": 3},
        n=6,
        scheduler="round-robin",
        max_interactions=20_000,
    )
    add(protocol="uniform-bipartition", n=9)
    add(protocol="repeated-bipartition", params={"h": 2}, n=8)
    add(protocol="r-generalized-partition", params={"ratio": (1, 2)}, n=10)
    add(protocol="leader-election", n=12)
    add(
        protocol="approx-k-partition",
        params={"k": 3},
        n=12,
        deterministic_output=False,
    )
    # Weak-fairness k-partition: converges under round-robin (the
    # discriminating scenario — uniform-k-partition livelocks there).
    add(protocol="weak-k-partition", params={"k": 3}, n=10)
    add(
        protocol="weak-k-partition",
        params={"k": 3},
        n=11,
        scheduler="round-robin",
        max_interactions=20_000,
    )
    # Graph-restricted bipartition across the topology grid; the
    # graph:* cases also exercise the agent-vs-graph-engine
    # bit-identity check.
    add(protocol="graph-bipartition", n=12)
    add(protocol="graph-bipartition", n=14, scheduler="graph:complete")
    add(protocol="graph-bipartition", n=16, scheduler="graph:cycle")
    add(
        protocol="graph-bipartition",
        n=15,  # odd: stable-but-not-silent terminal
        scheduler="graph:regular:4",
    )
    return cases


def _fuzz_one(
    case: FuzzCase, reproducer_dir: str | Path | None
) -> list[FuzzFinding]:
    findings: list[FuzzFinding] = []
    protocol = case.build()

    # 1. Differential replay through every engine data path.  The
    # replay needs coverage, not convergence, so its budget is capped:
    # a non-stabilizing case must not balloon into a five-way replay of
    # the full interaction budget.  Cases whose scheduler name is part
    # of the spec grammar record under that scheduler; fuzzer-only
    # schedulers (sticky) record uniform as before.
    try:
        diff_scheduler: SchedulerSpec | None = SchedulerSpec.parse(
            case.scheduler
        )
    except SchedulerError:
        diff_scheduler = None
    report = run_differential(
        protocol,
        case.n,
        seed=case.seed,
        scheduler=diff_scheduler,
        max_interactions=min(case.max_interactions, 30_000),
        reproducer_dir=reproducer_dir,
    )
    if not report.ok:
        d = report.divergence
        kind = "invariant" if d is not None and d.kind == "invariant" else "divergence"
        findings.append(
            FuzzFinding(
                case=case,
                kind=kind,
                detail=report.summary(),
                reproducer_path=report.reproducer_path,
            )
        )

    # 2. Invariants under the case's scheduler (fair or not).
    factory = SCHEDULERS[case.scheduler]
    monitor = ConformanceMonitor(invariant_pack(protocol, case.n))
    try:
        AgentBasedEngine(scheduler_factory=factory).run(
            protocol,
            case.n,
            seed=case.seed,
            max_interactions=case.max_interactions,
            on_effective=monitor,
        )
    except InvariantViolation as exc:
        findings.append(
            FuzzFinding(
                case=case,
                kind="invariant",
                detail=f"under {case.scheduler} scheduler: {exc}",
            )
        )

    # 3. Cross-engine output agreement (uniform scheduler only — the
    # jump-chain engines require it).
    if case.deterministic_output and case.scheduler == "uniform":
        outputs: dict[str, tuple[int, ...]] = {}
        for engine_name in ("agent", "batch", "count", "hybrid", "ensemble"):
            result = build_engine(engine_name).run(
                protocol,
                case.n,
                seed=case.seed,
                max_interactions=case.max_interactions,
            )
            if result.converged and len(result.group_sizes):
                outputs[engine_name] = tuple(int(g) for g in result.group_sizes)
        if len(set(outputs.values())) > 1:
            findings.append(
                FuzzFinding(
                    case=case,
                    kind="engine-split",
                    detail=(
                        "converged engines disagree on the output "
                        f"partition: { {e: list(g) for e, g in outputs.items()} }"
                    ),
                )
            )

    # 4. Agent-vs-graph bit-identity (graph schedulers only).  The
    # graph engine documents draw-for-draw equivalence with the agent
    # engine under a GraphScheduler built from the same spec — not a
    # distributional claim but an exact one, so any drift in either
    # sampling path is a finding.
    if diff_scheduler is not None and diff_scheduler.kind == "graph":
        from ..engine.graph_batch import GraphBatchEngine

        spec = diff_scheduler
        kwargs = dict(
            seed=case.seed, max_interactions=case.max_interactions
        )
        agent_result = AgentBasedEngine(scheduler_factory=spec.build).run(
            protocol, case.n, **kwargs
        )
        graph_result = GraphBatchEngine(spec).run(protocol, case.n, **kwargs)
        mismatches = [
            f"{field_name}: agent={a!r} graph={g!r}"
            for field_name, a, g in (
                (
                    "final_counts",
                    [int(x) for x in agent_result.final_counts],
                    [int(x) for x in graph_result.final_counts],
                ),
                (
                    "interactions",
                    agent_result.interactions,
                    graph_result.interactions,
                ),
                (
                    "effective_interactions",
                    agent_result.effective_interactions,
                    graph_result.effective_interactions,
                ),
                ("converged", agent_result.converged, graph_result.converged),
            )
            if a != g
        ]
        if mismatches:
            findings.append(
                FuzzFinding(
                    case=case,
                    kind="engine-split",
                    detail=(
                        "agent+GraphScheduler and graph engine are not "
                        "bit-identical: " + "; ".join(mismatches)
                    ),
                )
            )
    return findings


def run_fuzz(
    cases: Sequence[FuzzCase] | None = None,
    *,
    reproducer_dir: str | Path | None = None,
    log: Callable[[str], None] | None = None,
) -> list[FuzzFinding]:
    """Run every case of the corpus; returns all confirmed findings.

    A crash inside one case is converted into an ``error`` finding
    rather than aborting the sweep — the fuzzer's job is to surface
    problems, and a traceback in case 3 must not mask a divergence in
    case 7.
    """
    if cases is None:
        cases = default_corpus()
    findings: list[FuzzFinding] = []
    for i, case in enumerate(cases):
        if log is not None:
            log(f"[{i + 1}/{len(cases)}] {case.label()}")
        try:
            found = _fuzz_one(case, reproducer_dir)
        except Exception as exc:  # noqa: BLE001 — survey must not abort
            found = [
                FuzzFinding(
                    case=case,
                    kind="error",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            ]
        for f in found:
            if log is not None:
                log("  " + f.summary())
        findings.extend(found)
    return findings
