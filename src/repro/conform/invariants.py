"""The pluggable invariant pack.

An :class:`Invariant` is a named predicate over live count vectors; a
pack is the list of invariants that apply to one protocol at one
population size.  Packs generalize
:class:`repro.analysis.invariants.InvariantMonitor` (one anonymous
check) to a family of named checks with per-invariant diagnostics, and
they attach to any engine through the same ``on_effective`` hook.

The k-partition invariants come straight from the paper's proof:

* **Lemma 1** — ``#g_x = sum_{p>x} #m_p + sum_{q>=x} #d_q + #g_k`` for
  every ``x``; the conserved quantity behind the correctness proof.
* **staircase** — ``#g_1 >= #g_2 >= ... >= #g_k``; follows from
  Lemma 1 because the right-hand tails shrink as ``x`` grows.
* **cardinality** — ``|M| + |D| <= n // 2``; Lemma 1 at ``x = 1``
  gives ``#g_1 = |M| + |D| + #g_k >= |M| + |D|`` and the population
  must also hold the ``g_1`` agents, so ``2(|M| + |D|) <= n``.
* **stable-signature** (Lemmas 4-6) — whenever the stability predicate
  fires, the configuration must be *the* unique stable signature for
  ``(n, k)`` and the group sizes must match the closed form.

Generic invariants (population conservation, non-negativity, total
output map) apply to every protocol in the registry — including on
restricted interaction graphs, where they hold verbatim.  Lemma 1 is
protocol-specific: the weak-fairness base-station protocol carries an
exact cyclic-assignment staircase instead, and the arbitrary-graph
bipartition carries group balance (#g1 == #g2) plus free-agent parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from ..analysis.invariants import InvariantViolation
from ..core.protocol import Protocol
from ..protocols.graph_bipartition import GraphBipartitionProtocol
from ..protocols.kpartition import UniformKPartitionProtocol
from ..protocols.leader_election import LeaderElectionProtocol
from ..protocols.rgeneralized import RGeneralizedPartitionProtocol
from ..protocols.weak_kpartition import WeakKPartitionProtocol

__all__ = [
    "Invariant",
    "invariant_pack",
    "check_counts",
    "ConformanceMonitor",
]

#: ``check(counts) -> None | str``: None means the invariant holds; a
#: string is the violation diagnostic.
CheckFn = Callable[[np.ndarray], "str | None"]


@dataclass(frozen=True, slots=True)
class Invariant:
    """One named runtime invariant over count vectors."""

    name: str
    description: str
    check: CheckFn

    def violation(self, counts: np.ndarray) -> str | None:
        """The diagnostic for ``counts``, or None when the invariant holds."""
        return self.check(counts)


# ----------------------------------------------------------------------
# Generic invariants — every protocol in the registry
# ----------------------------------------------------------------------
def _population_conserved(n: int) -> Invariant:
    def check(counts: np.ndarray) -> str | None:
        total = int(counts.sum())
        if total != n:
            return f"population drifted: sum(counts) = {total}, expected {n}"
        return None

    return Invariant(
        "population-conserved",
        f"sum of per-state counts stays exactly {n}",
        check,
    )


def _non_negative() -> Invariant:
    def check(counts: np.ndarray) -> str | None:
        if (counts < 0).any():
            bad = np.flatnonzero(counts < 0).tolist()
            return f"negative count at state index(es) {bad}"
        return None

    return Invariant(
        "non-negative", "no per-state count ever goes negative", check
    )


def _group_map_total(protocol: Protocol, n: int) -> Invariant:
    def check(counts: np.ndarray) -> str | None:
        sizes = protocol.group_sizes(counts)
        total = int(sizes.sum())
        if total != n:
            return (
                f"output map is not total: group sizes sum to {total}, "
                f"expected {n} (some state maps to no group)"
            )
        return None

    return Invariant(
        "group-map-total",
        "every agent is assigned to exactly one output group",
        check,
    )


# ----------------------------------------------------------------------
# k-partition invariants — the paper's proof obligations
# ----------------------------------------------------------------------
def _lemma1(protocol: UniformKPartitionProtocol) -> Invariant:
    def check(counts: np.ndarray) -> str | None:
        res = protocol.lemma1_residuals(counts)
        if res.any():
            return f"Lemma 1 residuals non-zero: {res.tolist()}"
        return None

    return Invariant(
        "lemma1",
        "#g_x = sum_{p>x} #m_p + sum_{q>=x} #d_q + #g_k for all x (Lemma 1)",
        check,
    )


def _staircase(protocol: UniformKPartitionProtocol) -> Invariant:
    g_idx = list(protocol.g_indices)

    def check(counts: np.ndarray) -> str | None:
        g = counts[g_idx]
        if (np.diff(g) > 0).any():
            return f"group-count staircase broken: #g = {g.tolist()}"
        return None

    return Invariant(
        "staircase",
        "#g_1 >= #g_2 >= ... >= #g_k (implied by Lemma 1)",
        check,
    )


def _cardinality(protocol: UniformKPartitionProtocol, n: int) -> Invariant:
    m_idx = list(protocol.m_indices)
    d_idx = list(protocol.d_indices)
    bound = n // 2

    def check(counts: np.ndarray) -> str | None:
        m_total = int(counts[m_idx].sum()) if m_idx else 0
        d_total = int(counts[d_idx].sum()) if d_idx else 0
        if m_total + d_total > bound:
            return (
                f"|M| + |D| = {m_total} + {d_total} exceeds n//2 = {bound}"
            )
        return None

    return Invariant(
        "cardinality",
        f"|M| + |D| <= n//2 = {bound} (Lemma 1 at x = 1)",
        check,
    )


def _stable_signature(protocol: UniformKPartitionProtocol, n: int) -> Invariant:
    pred = protocol.stability_predicate(n)
    expected = protocol.expected_stable_counts(n)
    exp_sizes = protocol.expected_group_sizes(n)
    i0, i1 = protocol.initial_indices
    space = protocol.space

    def check(counts: np.ndarray) -> str | None:
        if pred is None or not pred(counts):
            return None
        # Stability claimed: the configuration must be the unique
        # signature of Lemmas 4-6 (free agent may sit in either flavour).
        for name, want in expected.items():
            idx = space.index(name)
            have = int(counts[idx])
            if idx in (i0, i1):
                continue  # checked as a sum below
            if have != want:
                return (
                    f"stable claim with #{name} = {have}, signature "
                    f"requires {want} (Lemmas 4-6)"
                )
        free = int(counts[i0] + counts[i1])
        want_free = expected[space.names[i0]] + expected[space.names[i1]]
        if free != want_free:
            return f"stable claim with {free} free agents, expected {want_free}"
        sizes = protocol.group_sizes(counts)
        if (sizes != exp_sizes).any():
            return (
                f"stable claim with group sizes {sizes.tolist()}, "
                f"expected {exp_sizes.tolist()}"
            )
        return None

    return Invariant(
        "stable-signature",
        "a stable configuration is the unique Lemmas 4-6 signature",
        check,
    )


# ----------------------------------------------------------------------
# Leader election — leader survival and monotone leader count
# ----------------------------------------------------------------------
def _leader_survives(protocol: LeaderElectionProtocol) -> Invariant:
    leader = protocol.leader_index

    def check(counts: np.ndarray) -> str | None:
        cur = int(counts[leader])
        if cur < 1:
            return f"leader count dropped to {cur}; at least one must survive"
        return None

    return Invariant(
        "leader-survives", "#L never drops below 1", check
    )


def _leaders_never_increase(protocol: LeaderElectionProtocol) -> Invariant:
    """Stateful: compares successive configurations of *one* execution.

    Only meaningful when the invariant sees every configuration of a
    single run in order (``ConformanceMonitor`` with ``every=1``, or
    the differ's oracle trajectory) — packs built for result-level
    checking must exclude it (``include_stateful=False``).
    """
    leader = protocol.leader_index
    state = {"prev": None}

    def check(counts: np.ndarray) -> str | None:
        cur = int(counts[leader])
        prev = state["prev"]
        state["prev"] = cur
        if prev is not None and cur > prev:
            return f"leader count rose from {prev} to {cur}"
        return None

    return Invariant(
        "leaders-monotone",
        "#L is non-increasing along one execution",
        check,
    )


# ----------------------------------------------------------------------
# Weak-fairness k-partition — base-station conservation laws
# ----------------------------------------------------------------------
def _single_coordinator(protocol: WeakKPartitionProtocol) -> Invariant:
    def check(counts: np.ndarray) -> str | None:
        total = protocol.coordinator_count(counts)
        if total != 1:
            return f"{total} agents in bs_* states; exactly 1 base station exists"
        return None

    return Invariant(
        "single-coordinator",
        "exactly one agent occupies a bs_* state at all times",
        check,
    )


def _assignment_staircase(protocol: WeakKPartitionProtocol) -> Invariant:
    def check(counts: np.ndarray) -> str | None:
        res = protocol.assignment_residuals(counts)
        if res.any():
            return f"cyclic-assignment residuals non-zero: {res.tolist()}"
        return None

    return Invariant(
        "assignment-staircase",
        "#g_x = #g_k + [x <= t-1] for the active bs_t (exact prefix staircase)",
        check,
    )


# ----------------------------------------------------------------------
# Graph bipartition — mobility conservation laws
# ----------------------------------------------------------------------
def _groups_balanced(protocol: GraphBipartitionProtocol) -> Invariant:
    def check(counts: np.ndarray) -> str | None:
        res = protocol.balance_residual(counts)
        if res != 0:
            return f"#g1 - #g2 = {res}; the partner rule mints both together"
        return None

    return Invariant(
        "groups-balanced",
        "#g1 == #g2 at every reachable configuration (graph Lemma 1)",
        check,
    )


def _free_parity(protocol: GraphBipartitionProtocol, n: int) -> Invariant:
    parity = n % 2

    def check(counts: np.ndarray) -> str | None:
        free = protocol.free_count(counts)
        if free % 2 != parity:
            return f"{free} free agents; parity must stay {parity} (n = {n})"
        return None

    return Invariant(
        "free-parity",
        f"number of uncommitted agents keeps parity {parity}",
        check,
    )


# ----------------------------------------------------------------------
# Pack assembly
# ----------------------------------------------------------------------
def invariant_pack(
    protocol: Protocol, n: int, *, include_stateful: bool = True
) -> list[Invariant]:
    """The invariants that apply to ``protocol`` at population size ``n``.

    Every protocol gets population conservation and non-negativity;
    protocols with a group map additionally get the total-output check;
    the paper's k-partition family (including the R-generalized wrapper,
    which delegates to an inner k-partition) gets the full Lemma-1 pack.

    ``include_stateful=False`` drops invariants that compare successive
    configurations of one execution (currently leader monotonicity) —
    required when a pack checks unrelated configurations, e.g. the
    final counts of independent trials.
    """
    pack = [_population_conserved(n), _non_negative()]
    if protocol.num_groups:
        pack.append(_group_map_total(protocol, n))
    kp: UniformKPartitionProtocol | None = None
    if isinstance(protocol, UniformKPartitionProtocol):
        kp = protocol
    elif isinstance(protocol, RGeneralizedPartitionProtocol):
        kp = protocol.inner
    if kp is not None:
        pack.append(_lemma1(kp))
        pack.append(_staircase(kp))
        pack.append(_cardinality(kp, n))
        pack.append(_stable_signature(kp, n))
    if isinstance(protocol, WeakKPartitionProtocol):
        pack.append(_single_coordinator(protocol))
        pack.append(_assignment_staircase(protocol))
    if isinstance(protocol, GraphBipartitionProtocol):
        pack.append(_groups_balanced(protocol))
        pack.append(_free_parity(protocol, n))
    if isinstance(protocol, LeaderElectionProtocol):
        pack.append(_leader_survives(protocol))
        if include_stateful:
            pack.append(_leaders_never_increase(protocol))
    return pack


def check_counts(
    pack: Sequence[Invariant], counts: Sequence[int] | np.ndarray
) -> list[str]:
    """Evaluate every invariant once; returns the violation diagnostics."""
    vec = np.asarray(counts, dtype=np.int64)
    out = []
    for inv in pack:
        try:
            msg = inv.violation(vec)
        except Exception as exc:  # noqa: BLE001 — a crashing check IS a finding
            msg = f"check raised {type(exc).__name__}: {exc}"
        if msg is not None:
            out.append(f"{inv.name}: {msg}")
    return out


class ConformanceMonitor:
    """``on_effective`` callback enforcing a whole invariant pack.

    Generalizes :class:`repro.analysis.invariants.InvariantMonitor`:
    every invariant in the pack is evaluated with the same stride, the
    initial configuration is checked through the ``prime`` hook and the
    terminal configuration through ``finalize`` (so a violation in the
    configuration a run starts or ends in is never missed, whatever the
    stride).

    Raises :class:`repro.analysis.invariants.InvariantViolation` naming
    the failing invariant(s).
    """

    def __init__(self, pack: Sequence[Invariant], *, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"'every' must be positive, got {every}")
        if not pack:
            raise ValueError("conformance monitor needs at least one invariant")
        self._pack = list(pack)
        self._every = every
        self._calls = 0
        #: Number of configurations actually evaluated (all invariants).
        self.checks_performed = 0

    @property
    def pack(self) -> list[Invariant]:
        return list(self._pack)

    def __call__(self, interactions: int, counts: Sequence[int]) -> None:
        self._calls += 1
        if self._calls % self._every:
            return
        self._evaluate(interactions, counts)

    def prime(self, interactions: int, counts: Sequence[int]) -> None:
        """Engine start-of-run hook: check the initial configuration."""
        self._evaluate(interactions, counts)

    def finalize(self, interactions: int, counts: Sequence[int]) -> None:
        """Engine end-of-run hook: always check the terminal configuration."""
        if self._calls and self._calls % self._every == 0:
            return  # the last __call__ already evaluated this configuration
        self._evaluate(interactions, counts)

    def _evaluate(self, interactions: int, counts: Sequence[int]) -> None:
        self.checks_performed += 1
        problems = check_counts(self._pack, counts)
        if problems:
            raise InvariantViolation(
                f"{len(problems)} invariant(s) violated after "
                f"{interactions} interactions: " + "; ".join(problems),
                interactions,
                list(counts),
            )
