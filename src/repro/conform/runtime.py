"""Process-wide conformance checking for production sweeps.

The differ and fuzzer are offline tools; this module is the *online*
half: :func:`use_conformance` installs a process-wide runtime that
:func:`~repro.engine.runner.run_trials` consults after every completed
trial set, checking each trial's final configuration against the
protocol's invariant pack.  The experiments and campaign CLIs expose it
as the ``--conform`` debug flag — the cost is one pack evaluation per
trial, negligible next to simulation, so it can ride along on any
sweep whose results look suspicious.

Only stateless invariants are enforced here (final counts of different
trials are unrelated configurations, so cross-call invariants like
leader monotonicity would misfire).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator

from ..analysis.invariants import InvariantViolation
from ..core.protocol import Protocol
from ..engine.base import SimulationResult
from .invariants import Invariant, check_counts, invariant_pack

__all__ = [
    "ConformanceRuntime",
    "use_conformance",
    "active_conformance",
    "check_result",
]


@dataclass(slots=True)
class ConformanceRuntime:
    """State of one installed conformance session.

    strict:
        Raise :class:`~repro.analysis.invariants.InvariantViolation` on
        the first violating result (default).  Non-strict mode only
        accumulates ``violations`` — useful for surveying.
    """

    strict: bool = True
    results_checked: int = 0
    violations: list[str] = field(default_factory=list)
    _packs: dict[tuple[int, int], list[Invariant]] = field(
        default_factory=dict, repr=False
    )

    def pack_for(self, protocol: Protocol, n: int) -> list[Invariant]:
        """The (cached) stateless invariant pack for one parameter point."""
        key = (id(protocol), n)
        pack = self._packs.get(key)
        if pack is None:
            pack = invariant_pack(protocol, n, include_stateful=False)
            self._packs[key] = pack
        return pack


#: Runtime installed by :func:`use_conformance`; None disables checking.
_ACTIVE: ConformanceRuntime | None = None


def active_conformance() -> ConformanceRuntime | None:
    """The runtime currently installed by :func:`use_conformance`."""
    return _ACTIVE


@contextmanager
def use_conformance(
    runtime: ConformanceRuntime | None = None, *, strict: bool = True
) -> Iterator[ConformanceRuntime]:
    """Enable conformance checking of every ``run_trials`` result.

    Yields the installed :class:`ConformanceRuntime` (a fresh one
    unless an existing instance is passed in) so callers can inspect
    ``results_checked`` and ``violations`` afterwards.
    """
    global _ACTIVE
    rt = runtime if runtime is not None else ConformanceRuntime(strict=strict)
    previous = _ACTIVE
    _ACTIVE = rt
    try:
        yield rt
    finally:
        _ACTIVE = previous


def check_result(
    protocol: Protocol,
    result: SimulationResult,
    runtime: ConformanceRuntime | None = None,
) -> list[str]:
    """Check one trial's final configuration against its invariant pack.

    Uses the explicitly passed runtime, else the installed one; with
    neither, the call is a no-op returning ``[]``.  In strict mode a
    violation raises; otherwise the diagnostics are accumulated on the
    runtime and returned.
    """
    rt = runtime if runtime is not None else _ACTIVE
    if rt is None:
        return []
    pack = rt.pack_for(protocol, result.n)
    problems = check_counts(pack, result.final_counts)
    rt.results_checked += 1
    if problems:
        labelled = [
            f"{protocol.name} n={result.n} engine={result.engine}: {p}"
            for p in problems
        ]
        rt.violations.extend(labelled)
        if rt.strict:
            raise InvariantViolation(
                f"final configuration violates {len(problems)} invariant(s): "
                + "; ".join(problems),
                result.interactions,
                [int(c) for c in result.final_counts],
            )
    return problems
