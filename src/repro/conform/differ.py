"""Lockstep differential execution of one schedule through every engine.

The engine paths agree *in law* but not bit-for-bit: the count, hybrid
and ensemble engines consume randomness as a jump chain, so seeding
them identically to the agent engines cannot line trajectories up.
What they all share is the transition-application data path — scalar
``delta_list`` lookups (agent), ``delta_flat`` with incremental active
weights (batch), interaction classes with Fenwick-indexed weights
(count), the batch-to-count hand-off (hybrid), the vectorized
class/weight matrices (ensemble), and the kernel tiers' sessions
(count-jit, batch-jit), which drive the same class tables and flat
transition arrays the compiled kernels consume.  The differ replays one recorded
:class:`~repro.conform.schedule.InteractionSchedule` through the
**real engine sessions** — every engine's
:meth:`~repro.engine.session.EngineSession.apply_scheduled` pushes one
externally chosen interaction through the engine's actual state and
weight bookkeeping — and diffs the count vectors against the
compilation-free name-level oracle after every step.  (Earlier
revisions maintained a hand-written replica of each data path here;
those replicas could drift from the engines they imitated, which is
exactly the class of bug a differ exists to catch.)

Any disagreement — a pair one path thinks is null and another thinks
is effective, a drifting count vector, or broken internal weight
bookkeeping (:meth:`~repro.engine.session.EngineSession.audit`) — is
reported as a :class:`Divergence`, and a minimal reproducer (the
schedule prefix up to the divergent step) is dumped through
:class:`~repro.obs.trace.TraceWriter` so the failure can be replayed
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

from ..core.errors import SimulationError
from ..core.protocol import Protocol
from ..core.rng import SeedLike, ensure_generator
from ..engine.agent_based import AgentBasedEngine
from ..engine.batch import BatchEngine
from ..engine.count_based import CountBasedEngine
from ..engine.ensemble import EnsembleEngine
from ..engine.graph_batch import GraphBatchEngine
from ..engine.hybrid import HybridEngine
from ..engine.jit import JitBatchEngine, JitCountEngine
from ..obs.trace import TraceWriter
from ..scheduling.base import Scheduler
from ..scheduling.spec import SchedulerSpec
from .invariants import Invariant, check_counts, invariant_pack
from .schedule import InteractionSchedule, record_schedule

__all__ = ["Divergence", "DiffReport", "run_differential", "ENGINE_PATHS"]

#: Engine data paths the differ can drive, in canonical order.
ENGINE_PATHS = (
    "agent",
    "batch",
    "count",
    "hybrid",
    "ensemble",
    "count-jit",
    "batch-jit",
    "graph",
)

#: Constructors yielding an engine whose session supports driven
#: execution.  The ensemble engine is pinned to its pure vectorized
#: path (finish_threshold=0) so the drive exercises the matrix
#: machinery rather than a scalar-finisher hand-off.  The kernel tiers
#: drive the identical class tables/flat transition arrays their
#: compiled kernels consume (``ensemble-parallel`` has no path of its
#: own — its data path is the ensemble engine's, shard by shard).
_ENGINE_BUILDERS = {
    "agent": AgentBasedEngine,
    "batch": BatchEngine,
    "count": CountBasedEngine,
    "hybrid": HybridEngine,
    "ensemble": lambda: EnsembleEngine(finish_threshold=0),
    "count-jit": JitCountEngine,
    "batch-jit": JitBatchEngine,
    # Driven sessions never sample pairs, so the graph path's topology
    # is irrelevant to the replay — the complete graph stands in; what
    # the drive exercises is the graph session's shared batch data path
    # (incremental weights + apply_scheduled) behind its own audit().
    "graph": GraphBatchEngine,
}


class _DrivenEngine:
    """One engine path, driven through its real session.

    ``apply_scheduled`` feeds the oracle's chosen interaction through
    the engine's genuine data structures (agent arrays, incremental
    weights, Fenwick trees, vector matrices); ``audit`` asks the
    session to re-derive its own bookkeeping from first principles.
    For the hybrid path, the batch-to-count hand-off is forced at
    ``switch_at`` so every differential run exercises both phases and
    the state transfer between them.
    """

    def __init__(
        self,
        name: str,
        protocol: Protocol,
        counts0: Sequence[int],
        *,
        switch_at: int | None = None,
    ) -> None:
        self.name = name
        self._switch_at = switch_at
        # The session is never advance()d, only driven, so the seed is
        # irrelevant — driven application consumes no engine randomness.
        self._session = _ENGINE_BUILDERS[name]().start(
            protocol, initial_counts=list(counts0), seed=0
        )

    @property
    def counts(self) -> list[int]:
        return list(self._session.counts)

    def step(self, index: int, a: int, b: int, p: int, q: int) -> bool:
        if self._switch_at is not None and index >= self._switch_at:
            self._session.switch_now()
        return self._session.apply_scheduled(a, b, p, q)

    def check(self) -> str | None:
        return self._session.audit()


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Divergence:
    """First observed disagreement between an engine path and the oracle."""

    engine: str
    #: 0-based index into the schedule's pair list.
    step: int
    pair: tuple[int, int]
    #: "effectiveness" | "counts" | "consistency" | "invariant"
    kind: str
    detail: str
    reference_counts: list[int]
    engine_counts: list[int] | None

    def to_record(self) -> dict:
        return {
            "engine": self.engine,
            "step": int(self.step),
            "pair": [int(self.pair[0]), int(self.pair[1])],
            "kind": self.kind,
            "detail": self.detail,
            "reference_counts": [int(c) for c in self.reference_counts],
            "engine_counts": (
                None
                if self.engine_counts is None
                else [int(c) for c in self.engine_counts]
            ),
        }


@dataclass(slots=True)
class DiffReport:
    """Outcome of one differential run."""

    protocol: str
    n: int
    engines: list[str]
    steps_replayed: int
    effective_steps: int
    divergence: Divergence | None = None
    invariant_violations: list[str] = field(default_factory=list)
    reproducer_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.invariant_violations

    def summary(self) -> str:
        head = (
            f"{self.protocol} n={self.n}: replayed {self.steps_replayed} "
            f"interactions ({self.effective_steps} effective) through "
            f"{len(self.engines)} engine path(s)"
        )
        if self.ok:
            return head + " — no divergence"
        lines = [head]
        if self.divergence is not None:
            d = self.divergence
            lines.append(
                f"  DIVERGENCE [{d.kind}] engine={d.engine} step={d.step} "
                f"pair={d.pair}: {d.detail}"
            )
        for v in self.invariant_violations:
            lines.append(f"  INVARIANT: {v}")
        if self.reproducer_path:
            lines.append(f"  reproducer: {self.reproducer_path}")
        return "\n".join(lines)


def _dump_reproducer(
    directory: str | Path,
    schedule: InteractionSchedule,
    divergence: Divergence,
) -> str:
    """Write the minimal reproducer trace for a divergence."""
    directory = Path(directory)
    path = directory / (
        f"diverge-{schedule.protocol}-n{schedule.n}-step{divergence.step}.jsonl"
    )
    with TraceWriter(
        path,
        meta={
            "kind": "conform-reproducer",
            "engine": divergence.engine,
            "divergence_kind": divergence.kind,
        },
    ) as writer:
        writer.write(
            {
                "type": "conform_divergence",
                **divergence.to_record(),
            }
        )
        writer.write(
            {
                "type": "conform_schedule",
                **schedule.prefix(divergence.step + 1).to_record(),
            }
        )
    return str(path)


# ----------------------------------------------------------------------
# The differential executor
# ----------------------------------------------------------------------
def run_differential(
    protocol: Protocol,
    n: int | None = None,
    *,
    seed: SeedLike = None,
    schedule: InteractionSchedule | None = None,
    engines: Sequence[str] | None = None,
    max_interactions: int = 200_000,
    check_invariants: bool = True,
    invariants: Sequence[Invariant] | None = None,
    reference_protocol: Protocol | None = None,
    reproducer_dir: str | Path | None = None,
    stride: int = 1,
    scheduler: str | SchedulerSpec | Scheduler | None = None,
) -> DiffReport:
    """Replay one schedule through every engine data path and diff.

    Parameters
    ----------
    protocol:
        The protocol whose *compiled* tables the engine replicas use.
    schedule:
        A recorded schedule to replay; when omitted, one is recorded
        from ``reference_protocol`` (default: ``protocol``) with
        ``record_schedule(n=n, seed=seed, max_interactions=...)``.
    scheduler:
        Scheduler driving the recorded schedule: a name
        (``"graph:cycle"``, ``"roundrobin"``, ...), a parsed spec, or a
        live :class:`~repro.scheduling.base.Scheduler` instance.  Only
        the *recording* changes — the replay is scheduler-agnostic, so
        this is how the (protocol, fairness, graph) grid reaches every
        engine data path.  Ignored when ``schedule`` is supplied.
    engines:
        Engine paths to replicate, default all of :data:`ENGINE_PATHS`.
    check_invariants:
        Also enforce the protocol's invariant pack on the oracle
        trajectory (every effective step plus the endpoints).
    invariants:
        Explicit pack to enforce instead of
        :func:`~repro.conform.invariants.invariant_pack`.
    reference_protocol:
        Protocol driving the name-level oracle.  Passing a pristine
        protocol here while ``protocol`` is a mutated copy is how the
        mutation self-test proves the differ catches planted bugs.
    reproducer_dir:
        Directory for the divergence reproducer trace; None disables
        the dump.
    stride:
        Compare full count vectors on every ``stride``-th effective
        step (effectiveness verdicts are compared on *every* step, and
        the terminal configuration is always compared).
    """
    if stride < 1:
        raise SimulationError(f"stride must be positive, got {stride}")
    reference = reference_protocol if reference_protocol is not None else protocol
    if reference.num_states != protocol.num_states:
        raise SimulationError(
            "reference protocol and protocol under test have different "
            f"state counts ({reference.num_states} vs {protocol.num_states})"
        )
    if schedule is None:
        sched_obj: Scheduler | None = None
        if scheduler is not None and not isinstance(scheduler, Scheduler):
            spec = SchedulerSpec.parse(scheduler)
            if not spec.is_uniform:
                if n is None:
                    raise SimulationError(
                        "recording with a named scheduler needs an explicit n"
                    )
                sched_obj = spec.build(n, ensure_generator(seed))
        elif isinstance(scheduler, Scheduler):
            sched_obj = scheduler
        schedule = record_schedule(
            reference,
            n,
            seed=seed,
            max_interactions=max_interactions,
            scheduler=sched_obj,
        )
    if len(schedule.initial_counts) != protocol.num_states:
        raise SimulationError(
            f"schedule has {len(schedule.initial_counts)} states, protocol "
            f"under test has {protocol.num_states}"
        )

    names = engines if engines is not None else list(ENGINE_PATHS)
    unknown = [e for e in names if e not in ENGINE_PATHS]
    if unknown:
        raise SimulationError(
            f"unknown engine path(s) {unknown}; choose from {list(ENGINE_PATHS)}"
        )

    counts0 = schedule.initial_counts
    appliers = []
    for name in names:
        if name == "hybrid":
            appliers.append(
                _DrivenEngine(
                    name,
                    protocol,
                    counts0,
                    switch_at=max(1, len(schedule.pairs) // 2),
                )
            )
        else:
            appliers.append(_DrivenEngine(name, protocol, counts0))

    # Name-level oracle state (the same layout record_schedule used).
    space = reference.space
    table = reference.transitions
    ref_states: list[str] = []
    for idx, c in enumerate(counts0):
        ref_states.extend([space.names[idx]] * c)
    ref_counts: list[int] = list(counts0)

    pack: list[Invariant] = []
    if check_invariants:
        pack = (
            list(invariants)
            if invariants is not None
            else invariant_pack(reference, schedule.n)
        )

    report = DiffReport(
        protocol=schedule.protocol,
        n=schedule.n,
        engines=list(names),
        steps_replayed=0,
        effective_steps=0,
    )

    def finish(divergence: Divergence | None) -> DiffReport:
        report.divergence = divergence
        if divergence is not None and reproducer_dir is not None:
            report.reproducer_path = _dump_reproducer(
                reproducer_dir, schedule, divergence
            )
        return report

    if pack:
        problems = check_counts(pack, ref_counts)
        if problems:
            report.invariant_violations.extend(problems)
            return finish(
                Divergence(
                    engine="reference",
                    step=-1,
                    pair=(-1, -1),
                    kind="invariant",
                    detail="; ".join(problems),
                    reference_counts=list(ref_counts),
                    engine_counts=None,
                )
            )

    effective_since_compare = 0
    for step, (a, b) in enumerate(schedule.pairs):
        report.steps_replayed = step + 1
        p_name, q_name = ref_states[a], ref_states[b]
        p_idx, q_idx = space.index(p_name), space.index(q_name)
        p2_name, q2_name = table.apply(p_name, q_name)
        ref_effective = (p2_name, q2_name) != (p_name, q_name)
        if ref_effective:
            ref_states[a] = p2_name
            ref_states[b] = q2_name
            ref_counts[space.index(p_name)] -= 1
            ref_counts[space.index(q_name)] -= 1
            ref_counts[space.index(p2_name)] += 1
            ref_counts[space.index(q2_name)] += 1
            report.effective_steps += 1
            effective_since_compare += 1

        for applier in appliers:
            eff = applier.step(step, a, b, p_idx, q_idx)
            if eff != ref_effective:
                return finish(
                    Divergence(
                        engine=applier.name,
                        step=step,
                        pair=(a, b),
                        kind="effectiveness",
                        detail=(
                            f"pair ({p_name}, {q_name}) is "
                            f"{'effective' if ref_effective else 'null'} "
                            f"under the rule listing but "
                            f"{'effective' if eff else 'null'} in the "
                            f"{applier.name} path"
                        ),
                        reference_counts=list(ref_counts),
                        engine_counts=list(applier.counts),
                    )
                )

        compare_now = ref_effective and effective_since_compare >= stride
        if compare_now:
            effective_since_compare = 0
        if compare_now or step == len(schedule.pairs) - 1:
            for applier in appliers:
                have = list(applier.counts)
                if have != ref_counts:
                    return finish(
                        Divergence(
                            engine=applier.name,
                            step=step,
                            pair=(a, b),
                            kind="counts",
                            detail=(
                                f"count vector drifted from the oracle "
                                f"after {report.effective_steps} effective "
                                f"interactions"
                            ),
                            reference_counts=list(ref_counts),
                            engine_counts=have,
                        )
                    )
            if pack and ref_effective:
                problems = check_counts(pack, ref_counts)
                if problems:
                    report.invariant_violations.extend(problems)
                    return finish(
                        Divergence(
                            engine="reference",
                            step=step,
                            pair=(a, b),
                            kind="invariant",
                            detail="; ".join(problems),
                            reference_counts=list(ref_counts),
                            engine_counts=None,
                        )
                    )

    # Terminal cross-checks: internal bookkeeping and, when the schedule
    # was recorded rather than hand-built, agreement with its own record.
    for applier in appliers:
        problem = applier.check()
        if problem is not None:
            return finish(
                Divergence(
                    engine=applier.name,
                    step=len(schedule.pairs) - 1,
                    pair=schedule.pairs[-1] if schedule.pairs else (-1, -1),
                    kind="consistency",
                    detail=problem,
                    reference_counts=list(ref_counts),
                    engine_counts=list(applier.counts),
                )
            )
    if (
        reference_protocol is None
        and schedule.final_counts
        and ref_counts != list(schedule.final_counts)
    ):
        return finish(
            Divergence(
                engine="reference",
                step=len(schedule.pairs) - 1,
                pair=schedule.pairs[-1] if schedule.pairs else (-1, -1),
                kind="counts",
                detail="oracle replay disagrees with the schedule's own record",
                reference_counts=list(ref_counts),
                engine_counts=list(schedule.final_counts),
            )
        )
    return finish(None)
