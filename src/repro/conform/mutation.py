"""Transition-table mutation and the harness self-test.

A conformance harness that has never caught a bug proves nothing, so
this module plants one on purpose: :func:`mutate_protocol` corrupts a
single transition-table entry (the classic example redirects the
paper's rule 5 ``(initial, initial') -> (g_1, m_2)`` to
``(g_1, g_1)``, which silently breaks the Lemma 1 conservation law),
and :func:`self_test` asserts that

1. the pristine protocol sails through a differential run,
2. the differ flags the mutated tables against the pristine oracle, and
3. the invariant pack catches the mutated protocol inside a real
   engine run.

``repro-experiments conform check --self-test`` exits non-zero when any
of these fail — the CI smoke job runs exactly that.
"""

from __future__ import annotations

from ..core.errors import ProtocolError
from ..core.protocol import Protocol
from ..core.transitions import Transition, TransitionTable

__all__ = ["mutate_protocol", "self_test"]


def _canonical_rules(protocol: Protocol) -> list[Transition]:
    """Non-null rules, one per unordered input pair, in table order."""
    seen: set[tuple[str, str]] = set()
    out: list[Transition] = []
    for t in protocol.transitions:
        if t.is_identity or (t.p, t.q) in seen:
            continue
        seen.add((t.p, t.q))
        seen.add((t.q, t.p))
        out.append(t)
    return out


def mutate_protocol(
    protocol: Protocol, rule: int | tuple[str, str] = 0
) -> Protocol:
    """A copy of ``protocol`` with one transition-table entry corrupted.

    ``rule`` selects the target: an index into the canonical non-null
    rule list (mirrors folded, table order) or an ordered input pair of
    state names.  The corruption is deterministic and guaranteed to
    change semantics: the second output is redirected to the first
    output; if the outputs already coincide it is reverted to the
    second *input*; if that also coincides the rule is nulled out.

    The mutated protocol shares the original's state space, group map,
    initial state and stability predicate — only ``delta`` differs, so
    any disagreement a checker reports is attributable to exactly one
    table entry.
    """
    table = protocol.transitions
    if isinstance(rule, int):
        canon = _canonical_rules(protocol)
        if not 0 <= rule < len(canon):
            raise ProtocolError(
                f"rule index {rule} out of range; protocol has "
                f"{len(canon)} canonical non-null rules"
            )
        target = canon[rule]
    else:
        p, q = rule
        found = table.lookup(p, q)
        if found is None or found.is_identity:
            raise ProtocolError(
                f"no non-null rule registered for ordered pair ({p!r}, {q!r})"
            )
        target = found

    if target.q2 != target.p2:
        mutated = Transition(target.p, target.q, target.p2, target.p2)
    elif target.q2 != target.q:
        mutated = Transition(target.p, target.q, target.p2, target.q)
    else:
        mutated = Transition(target.p, target.q, target.p, target.q)

    reverse = table.lookup(target.q, target.p)
    mirror_folded = (
        target.p != target.q
        and reverse is not None
        and reverse == target.mirror
    )
    drop = {(target.p, target.q)}
    if mirror_folded:
        drop.add((target.q, target.p))

    new_table = TransitionTable(protocol.space)
    for t in table:
        if (t.p, t.q) in drop:
            continue
        new_table.add(t.p, t.q, t.p2, t.q2, mirror=False)
    if not mutated.is_identity:
        new_table.add(
            mutated.p, mutated.q, mutated.p2, mutated.q2, mirror=mirror_folded
        )

    return Protocol(
        f"{protocol.name}-mutated",
        protocol.space,
        new_table,
        protocol.initial_state,
        stability_predicate_factory=protocol.stability_predicate,
        metadata={
            **protocol.metadata,
            "mutation": f"{target} => {mutated}",
        },
    )


def self_test(
    protocol: Protocol | None = None,
    *,
    n: int = 48,
    seed: int = 11,
    max_interactions: int = 100_000,
) -> list[str]:
    """Prove the harness catches a planted table corruption.

    Returns the list of failure descriptions — empty means the harness
    works: the pristine protocol passes differentially, and both the
    differ and the invariant pack flag the mutation.

    With no explicit ``protocol`` the test covers a small default grid:
    the paper's uniform k-partition (corrupting rule 5 breaks the
    Lemma 1 conservation law) and the graph bipartition follow-up
    (corrupting ``(initial, initial') -> (g1, g2)`` into ``(g1, g1)``
    breaks the ``#g1 == #g2`` balance invariant) — so the harness is
    proven to catch bugs on both protocol families it guards.
    """
    if protocol is None:
        from ..protocols.registry import build_protocol

        failures: list[str] = []
        for name, params in (
            ("uniform-k-partition", {"k": 3}),
            ("graph-bipartition", {}),
        ):
            found = self_test(
                build_protocol(name, **params),
                n=n,
                seed=seed,
                max_interactions=max_interactions,
            )
            failures.extend(f"[{name}] {f}" for f in found)
        return failures

    from ..analysis.invariants import InvariantViolation
    from ..engine.batch import BatchEngine
    from .differ import run_differential
    from .invariants import ConformanceMonitor, invariant_pack
    from .schedule import record_schedule

    # Prefer the symmetry-breaking grouping rule (the paper's rule 5):
    # it is guaranteed to fire early in every execution, and its
    # corruption breaks the Lemma 1 conservation law immediately.
    rule: int | tuple[str, str] = 0
    if protocol.transitions.lookup("initial", "initial'") is not None:
        rule = ("initial", "initial'")
    mutated = mutate_protocol(protocol, rule)

    failures: list[str] = []
    schedule = record_schedule(
        protocol, n, seed=seed, max_interactions=max_interactions
    )

    pristine = run_differential(protocol, schedule=schedule)
    if not pristine.ok:
        failures.append(
            "pristine protocol diverged from its own oracle: "
            + pristine.summary()
        )

    caught = run_differential(
        mutated,
        schedule=schedule,
        reference_protocol=protocol,
        check_invariants=False,
    )
    if caught.ok:
        failures.append(
            f"differ missed the corrupted table entry "
            f"({mutated.metadata['mutation']})"
        )

    monitor = ConformanceMonitor(invariant_pack(protocol, n))
    try:
        BatchEngine().run(
            mutated,
            n,
            seed=seed,
            max_interactions=max_interactions,
            on_effective=monitor,
        )
    except InvariantViolation:
        pass
    else:
        failures.append(
            f"invariant pack missed the corrupted table entry "
            f"({mutated.metadata['mutation']}) over "
            f"{monitor.checks_performed} checked configurations"
        )
    return failures
