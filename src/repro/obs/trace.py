"""Structured JSONL run traces with provenance.

A *trace* is an append-only JSON-Lines file capturing what a sweep
actually simulated: one ``header`` record with provenance (git
revision, package and library versions, free-form metadata), then one
``trial_set`` record per :func:`~repro.engine.runner.run_trials` call
and one ``trial`` record per individual execution.  The schema is
documented in ``docs/observability.md``; ``schema`` in the header is
bumped on incompatible changes.

Writers flush after every record, so a killed sweep leaves a readable
prefix (the same crash-first discipline as the campaign store), and
every line is an independent JSON object — ``jq``, pandas and
:func:`read_trace` all consume the format directly.

The runner consults a process-wide writer installed with
:func:`use_trace_writer`; the experiments CLI's ``--trace PATH`` flag
is a thin wrapper around that.  Render a trace in the terminal with
``repro-experiments obs summarize PATH``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from contextlib import contextmanager
from collections.abc import Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..engine.runner import TrialSet

__all__ = [
    "TRACE_SCHEMA",
    "TraceWriter",
    "use_trace_writer",
    "active_trace_writer",
    "read_trace",
    "provenance",
]

#: Trace format version, written into every header record.
TRACE_SCHEMA = 1


def _git_rev() -> str | None:
    """Current git revision, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
        )
    except OSError:
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def provenance() -> dict[str, object]:
    """Where and with what a trace was produced (JSON-safe)."""
    import numpy

    from .. import __version__

    return {
        "git_rev": _git_rev(),
        "package_version": __version__,
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
        "platform": platform.platform(),
    }


class TraceWriter:
    """Append-only JSONL trace file.

    Parameters
    ----------
    path:
        Output file (parent directories are created).  An existing file
        is appended to — re-running a sweep extends its trace, each
        session separated by a fresh header record.
    meta:
        Free-form JSON-safe mapping stored in the header (the CLI puts
        the argv there).
    """

    def __init__(self, path: str | Path, *, meta: dict | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self.records_written = 0
        header = {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "created_unix": time.time(),
            **provenance(),
        }
        if meta:
            header["meta"] = meta
        self.write(header)

    def write(self, record: dict) -> None:
        """Append one JSON-safe record as a line and flush."""
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.records_written += 1

    def write_trial_set(
        self,
        ts: "TrialSet",
        *,
        seed: object = None,
        cached: bool = False,
        elapsed: float | None = None,
    ) -> None:
        """Record one ``run_trials`` outcome: a summary plus per-trial rows."""
        self.write(
            {
                "type": "trial_set",
                "time_unix": time.time(),
                "seed": seed if isinstance(seed, int) else None,
                "cached": cached,
                "elapsed_seconds": elapsed,
                **ts.stats(),
            }
        )
        for index, r in enumerate(ts.results):
            self.write(
                {
                    "type": "trial",
                    "protocol": r.protocol,
                    "n": r.n,
                    "engine": r.engine,
                    "trial_index": index,
                    "interactions": r.interactions,
                    "effective_interactions": r.effective_interactions,
                    "converged": r.converged,
                    "silent": r.silent,
                    "group_sizes": [int(g) for g in r.group_sizes],
                    "elapsed_seconds": r.elapsed,
                }
            )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Process-wide writer consulted by ``run_trials``; None disables tracing.
_ACTIVE_TRACE: TraceWriter | None = None


def active_trace_writer() -> TraceWriter | None:
    """The writer currently installed by :func:`use_trace_writer`."""
    return _ACTIVE_TRACE


@contextmanager
def use_trace_writer(writer: TraceWriter | None) -> Iterator[TraceWriter | None]:
    """Install ``writer`` as the process-wide trace sink for the block.

    Every :func:`~repro.engine.runner.run_trials` call inside the block
    appends its trial records; ``None`` silences tracing (useful for
    nesting).  The writer is *not* closed on exit — the caller owns it.
    """
    global _ACTIVE_TRACE
    previous = _ACTIVE_TRACE
    _ACTIVE_TRACE = writer
    try:
        yield writer
    finally:
        _ACTIVE_TRACE = previous


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace back into a list of records.

    Raises ``ValueError`` with the offending line number on malformed
    lines — a trace that parses is the CI smoke criterion.
    """
    records: list[dict] = []
    with Path(path).open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad trace line: {exc}") from exc
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(
                    f"{path}:{lineno}: trace records must be objects with a 'type'"
                )
            records.append(record)
    return records
