"""Zero-cost-when-disabled instrumentation core.

The simulation stack reports what it does through a process-wide
:class:`Telemetry` registry of named instruments:

* :class:`Counter` — monotone totals (runs, interactions, cache hits);
* :class:`Gauge` — last-written values (live replicates, ratios);
* :class:`Histogram` — log-bucketed distributions, the right shape for
  interaction counts and wall times, whose dynamic ranges span many
  orders of magnitude;
* :meth:`Telemetry.timer` — span-style wall-time measurement that
  records into a histogram.

The default registry is a **null** instance: every instrument lookup
returns a shared no-op object and :attr:`Telemetry.enabled` is False.
Instrumented code guards emission with a single attribute check
(``if telemetry.enabled:``), so a disabled process pays one branch per
*run*, never per interaction — the discipline the engines follow (see
``docs/observability.md`` for the metric catalogue).

Enable telemetry for a scope with :func:`use_telemetry`::

    from repro.obs import Telemetry, use_telemetry

    with use_telemetry(Telemetry()) as tel:
        run_trials(protocol, 60, trials=20, seed=0)
    print(tel.snapshot())

or process-wide with :func:`set_telemetry` (the campaign service does
this so its ``/metrics`` endpoint can report engine activity).

Thread-safety: instrument creation is lock-guarded; updates are plain
attribute writes, atomic enough under the GIL for the single-writer /
snapshot-reader pattern used here (handler threads only read).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from collections.abc import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "NullTelemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float | None:
        return self.value


class Histogram:
    """Log-bucketed distribution of non-negative samples.

    Bucket ``e`` holds samples in ``[2**e, 2**(e+1))``; exact zeros go
    to a dedicated underflow bucket.  Power-of-two buckets cover the
    ten-plus decades between a microsecond timer span and a 10^9
    interaction count with ~2x resolution at every scale, which is all
    a terminal report needs.  Exact count/sum/min/max are kept
    alongside, so means and totals are not quantized.
    """

    __slots__ = ("name", "buckets", "zeros", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: int | float) -> None:
        value = float(value)
        if value < 0 or math.isnan(value):
            raise ValueError(f"histogram {self.name!r} takes non-negative values, got {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zeros += 1
            return
        e = math.frexp(value)[1] - 1  # floor(log2(value))
        self.buckets[e] = self.buckets.get(e, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries.

        Returns the geometric midpoint of the bucket containing the
        q-th sample — within 2x of the exact order statistic, which is
        the histogram's resolution by construction.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile wants q in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = self.zeros
        if rank <= seen:
            return 0.0
        for e in sorted(self.buckets):
            seen += self.buckets[e]
            if rank <= seen:
                return math.sqrt(2.0**e * 2.0 ** (e + 1))
        return self.max

    def snapshot(self) -> dict[str, object]:
        """JSON-safe summary: exact moments plus the bucket counts."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "zeros": self.zeros,
            "buckets": {str(2.0**e): c for e, c in sorted(self.buckets.items())},
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument of a null registry."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: int | float) -> None:
        pass

    def snapshot(self) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class Telemetry:
    """Named-instrument registry; instruments are created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram(name))

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Span: record the enclosed wall time into ``<name>`` (seconds)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).record(time.perf_counter() - t0)

    def reset(self) -> None:
        """Drop every instrument (mainly for tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict[str, object]:
        """JSON-safe dump of every instrument, sorted by name."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "enabled": self.enabled,
            "counters": {k: counters[k].snapshot() for k in sorted(counters)},
            "gauges": {k: gauges[k].snapshot() for k in sorted(gauges)},
            "histograms": {k: histograms[k].snapshot() for k in sorted(histograms)},
        }


class NullTelemetry(Telemetry):
    """Disabled registry: lookups return a shared no-op instrument.

    Instrumented code never has to special-case "telemetry off" —
    calling through is harmless — but hot paths should still guard with
    ``if telemetry.enabled:`` so the disabled path performs no lookup
    or call at all.
    """

    enabled = False

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        yield


#: Process-wide registry; null unless an application opts in.
_ACTIVE: Telemetry = NullTelemetry()


def get_telemetry() -> Telemetry:
    """The process-wide registry (a :class:`NullTelemetry` by default)."""
    return _ACTIVE


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` process-wide; returns the previous registry."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` for the duration of a ``with`` block.

    The experiments CLI wraps sweeps in this to honour ``--metrics``
    without leaking an enabled registry into library callers.
    """
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
