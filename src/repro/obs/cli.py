"""``repro-experiments obs`` — observability CLI verbs.

Verbs::

    obs summarize TRACE.jsonl      # render a trace as a terminal report
    obs validate  TRACE.jsonl      # parse + schema-check (CI smoke)

``summarize`` renders the per-point table, the interactions-vs-n chart
and the per-trial distribution of a trace recorded with the
``--trace PATH`` flag of the experiment or campaign CLIs.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_obs_parser", "obs_main"]


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs",
        description="Inspect observability artifacts (JSONL run traces)",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    p_sum = sub.add_parser("summarize", help="render a trace file as a report")
    p_sum.add_argument("trace", help="JSONL trace written with --trace PATH")

    p_val = sub.add_parser(
        "validate", help="parse a trace and assert its basic invariants"
    )
    p_val.add_argument("trace", help="JSONL trace written with --trace PATH")
    p_val.add_argument(
        "--min-trials", type=int, default=1,
        help="fail unless the trace holds at least this many trial records",
    )
    return parser


def _cmd_summarize(args: argparse.Namespace) -> int:
    from .summary import summarize_trace

    print(summarize_trace(args.trace))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .trace import TRACE_SCHEMA, read_trace

    records = read_trace(args.trace)
    headers = [r for r in records if r["type"] == "header"]
    trials = [r for r in records if r["type"] == "trial"]
    problems: list[str] = []
    if not headers:
        problems.append("no header record")
    for h in headers:
        if h.get("schema") != TRACE_SCHEMA:
            problems.append(f"unknown schema {h.get('schema')!r}")
    if len(trials) < args.min_trials:
        problems.append(f"only {len(trials)} trial record(s), need {args.min_trials}")
    for t in trials:
        for field in ("protocol", "n", "engine", "interactions", "converged"):
            if field not in t:
                problems.append(f"trial record missing {field!r}")
                break
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1
    print(
        f"ok: {len(records)} record(s), {len(headers)} session(s), "
        f"{len(trials)} trial(s)"
    )
    return 0


def obs_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-experiments obs ...``."""
    args = build_obs_parser().parse_args(argv)
    commands = {"summarize": _cmd_summarize, "validate": _cmd_validate}
    return commands[args.verb](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(obs_main())
