"""Terminal reports over traces and telemetry snapshots.

Two renderers:

* :func:`summarize_trace` — turn a JSONL trace (see
  :mod:`repro.obs.trace`) into a human report: provenance, per-point
  table, an interactions-vs-n chart per protocol (reusing the
  experiment harness's :mod:`~repro.experiments.ascii_plot`), and a
  log-bucketed distribution of per-trial interaction counts.
* :func:`render_metrics` — pretty-print a
  :meth:`~repro.obs.telemetry.Telemetry.snapshot` (the ``--metrics``
  flag and the service's ``/metrics`` payload share this shape).
"""

from __future__ import annotations

import math
from pathlib import Path
from collections import defaultdict

from .trace import read_trace

__all__ = ["summarize_trace", "render_metrics"]

_BAR = "█"
_BAR_WIDTH = 40


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _hist_from_values(values: list[int]) -> dict[int, int]:
    """Power-of-two bucket counts (mirrors :class:`~.telemetry.Histogram`)."""
    buckets: dict[int, int] = defaultdict(int)
    for v in values:
        if v <= 0:
            continue
        buckets[math.frexp(float(v))[1] - 1] += 1
    return dict(buckets)


def _render_histogram(values: list[int], *, title: str) -> list[str]:
    buckets = _hist_from_values(values)
    lines = [title]
    if not buckets:
        lines.append("  (no samples)")
        return lines
    peak = max(buckets.values())
    for e in sorted(buckets):
        count = buckets[e]
        bar = _BAR * max(1, round(count / peak * _BAR_WIDTH))
        lines.append(f"  [{2**e:>12,}, {2**(e+1):>12,})  {bar} {count}")
    return lines


def summarize_trace(path: str | Path) -> str:
    """Render one trace file as a terminal report."""
    records = read_trace(path)
    headers = [r for r in records if r.get("type") == "header"]
    trial_sets = [r for r in records if r.get("type") == "trial_set"]
    trials = [r for r in records if r.get("type") == "trial"]

    lines: list[str] = [f"trace {path} — {len(records)} record(s)"]
    for h in headers:
        rev = h.get("git_rev")
        lines.append(
            f"  session: schema={h.get('schema')} "
            f"version={h.get('package_version')} "
            f"git={rev[:12] if isinstance(rev, str) else 'n/a'}"
        )
    if not trial_sets and not trials:
        lines.append("(no trial records)")
        return "\n".join(lines)

    # ------------------------------------------------------------- table
    lines.append("")
    lines.append(
        f"{'protocol':<28} {'engine':<9} {'n':>5} {'trials':>6} "
        f"{'mean_inter':>12} {'eff_ratio':>9} {'conv':>5} {'cached':>6} {'wall':>8}"
    )
    total_interactions = 0
    total_effective = 0
    total_trials = 0
    all_converged = True
    for ts in trial_sets:
        mean = float(ts.get("mean_interactions", 0.0))
        mean_eff = float(ts.get("mean_effective", 0.0))
        ratio = mean_eff / mean if mean else 0.0
        converged = bool(ts.get("all_converged", False))
        all_converged = all_converged and converged
        count = int(ts.get("trials", 0))
        total_trials += count
        total_interactions += int(mean * count)
        total_effective += int(mean_eff * count)
        lines.append(
            f"{str(ts.get('protocol', '?')):<28} {str(ts.get('engine', '?')):<9} "
            f"{ts.get('n', '?'):>5} {count:>6} {mean:>12.1f} {ratio:>9.3f} "
            f"{'yes' if converged else 'NO':>5} "
            f"{'hit' if ts.get('cached') else '-':>6} "
            f"{_fmt_seconds(ts.get('elapsed_seconds')):>8}"
        )
    overall_ratio = total_effective / total_interactions if total_interactions else 0.0
    lines.append(
        f"\n{len(trial_sets)} point(s), {total_trials} trial(s), "
        f"~{total_interactions:,} interactions "
        f"(effective ratio {overall_ratio:.3f}), "
        f"{'all converged' if all_converged else 'NOT ALL CONVERGED'}"
    )

    # ------------------------------------------------------------- chart
    by_series: dict[str, dict[int, float]] = defaultdict(dict)
    for ts in trial_sets:
        key = f"{ts.get('protocol', '?')}"
        n = ts.get("n")
        if isinstance(n, int):
            by_series[key][n] = float(ts.get("mean_interactions", 0.0))
    plottable = {
        label: (sorted(points), [points[n] for n in sorted(points)])
        for label, points in by_series.items()
        if len(points) >= 2
    }
    if plottable:
        from ..experiments.ascii_plot import line_plot

        lines.append("")
        lines.append(
            line_plot(
                plottable,
                title="mean interactions to stability vs n",
                xlabel="n (population size)",
                ylabel="mean interactions",
            )
        )

    # -------------------------------------------------------- distribution
    if trials:
        lines.append("")
        lines.extend(
            _render_histogram(
                [int(t.get("interactions", 0)) for t in trials],
                title=f"per-trial interactions ({len(trials)} trial(s), log2 buckets)",
            )
        )
    return "\n".join(lines)


def render_metrics(snapshot: dict) -> str:
    """Pretty-print a telemetry snapshot as aligned text."""
    lines: list[str] = []
    if not snapshot.get("enabled", False):
        lines.append("telemetry: disabled (null registry)")
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        width = max(map(len, counters))
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:,}")
    if gauges:
        lines.append("gauges:")
        width = max(map(len, gauges))
        for name in sorted(gauges):
            value = gauges[name]
            text = "-" if value is None else f"{value:.4g}"
            lines.append(f"  {name:<{width}}  {text}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name}: count={h['count']} mean={h['mean']:.4g} "
                f"min={h['min'] if h['min'] is not None else '-'} "
                f"p50={h['p50']:.4g} p90={h['p90']:.4g} "
                f"max={h['max'] if h['max'] is not None else '-'}"
            )
    # Derived: effective ratio from the runner counter pair.
    total = counters.get("runner.interactions")
    effective = counters.get("runner.effective_interactions")
    if total:
        lines.append(f"derived: runner effective ratio = {effective / total:.4f}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
