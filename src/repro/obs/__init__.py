"""Observability: structured tracing, run metrics, and profiling hooks.

Three layers, all off by default and zero-cost when disabled:

* :mod:`repro.obs.telemetry` — a process-wide registry of counters,
  gauges, log-bucketed histograms and span timers (null by default);
* :mod:`repro.obs.instruments` — the standard metric catalogue the
  engines and :func:`~repro.engine.runner.run_trials` emit through;
* :mod:`repro.obs.trace` — append-only JSONL run traces with
  provenance, written per trial by the runner when a writer is
  installed.

Rendering lives in :mod:`repro.obs.summary` and the CLI verbs in
:mod:`repro.obs.cli` (``repro-experiments obs summarize TRACE``);
both are imported lazily so the instrumentation core stays free of
heavyweight dependencies.  See ``docs/observability.md``.
"""

from .instruments import (
    record_cache_lookup,
    record_chunk_seconds,
    record_ensemble_batch,
    record_simulation,
    record_trialset,
)
from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from .trace import (
    TRACE_SCHEMA,
    TraceWriter,
    active_trace_writer,
    provenance,
    read_trace,
    use_trace_writer,
)

__all__ = [
    # telemetry core
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "NullTelemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    # metric catalogue
    "record_simulation",
    "record_ensemble_batch",
    "record_trialset",
    "record_cache_lookup",
    "record_chunk_seconds",
    # tracing
    "TRACE_SCHEMA",
    "TraceWriter",
    "use_trace_writer",
    "active_trace_writer",
    "read_trace",
    "provenance",
    # rendering (lazy)
    "summarize_trace",
    "render_metrics",
]


def __getattr__(name: str):
    """Lazily expose the renderers without importing the experiment stack.

    :mod:`repro.obs.summary` pulls in the ASCII plotting helpers from
    :mod:`repro.experiments`, which in turn imports the engines; a
    top-level import here would make the engines' own (light)
    ``repro.obs`` import circular.
    """
    if name in ("summarize_trace", "render_metrics"):
        from . import summary

        return getattr(summary, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
