"""Standard metric emission — the shared vocabulary of the repo.

The engines and the trial runner all report through these helpers so
the metric names stay consistent across call sites (the catalogue is
documented in ``docs/observability.md``).  Every helper checks
:attr:`Telemetry.enabled` once and returns immediately when the
process-wide registry is the null default, so instrumented code pays a
single function call per *run*, never per interaction.

Naming scheme::

    engine.<name>.runs                  counter, completed executions
    engine.<name>.interactions          counter, total interactions
    engine.<name>.effective_interactions counter
    engine.<name>.converged             counter
    engine.<name>.interactions_hist     histogram, per-run totals
    engine.<name>.elapsed_seconds       histogram, per-run wall time
    engine.ensemble.batches             counter, run_batch calls
    engine.ensemble.replicates          counter, replicates simulated
    engine.ensemble.retired_vectorized  counter, finished in the
                                        vectorized phase
    engine.ensemble.finisher_replicates counter, handed to the scalar
                                        finisher
    engine.ensemble.vector_steps        counter, vectorized loop steps
    engine.kernel.compiles              counter, compiled-kernel builds
    engine.kernel.compile_seconds       histogram, per-build wall time
    engine.parallel.shards              counter, replicate shards
                                        dispatched by parallel batches
    engine.parallel.last_workers        gauge, worker processes used by
                                        the latest parallel batch
    runner.calls / runner.trials        counters
    runner.interactions / runner.effective_interactions  counters
    runner.cache.hits / runner.cache.misses              counters
    runner.trial_interactions           histogram, per-trial totals
    runner.point_seconds                histogram, per-call wall time
    runner.chunk_seconds                histogram, per-chunk wall time
    results.shards.written              counter, columnar shards flushed
    results.shards.bytes                counter, shard bytes on disk
    results.shards.scan_rows            counter, rows streamed by scans

The derived *effective ratio* (effective / total interactions) is
computed by the renderers from the counter pair rather than stored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .telemetry import get_telemetry

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (engine imports us)
    from ..engine.base import SimulationResult
    from ..engine.runner import TrialSet

__all__ = [
    "record_simulation",
    "record_ensemble_batch",
    "record_kernel_compile",
    "record_parallel_shards",
    "record_trialset",
    "record_cache_lookup",
    "record_chunk_seconds",
    "record_shard_write",
    "record_scan_rows",
]


def record_simulation(result: "SimulationResult") -> None:
    """Emit the standard per-run metrics for one finished execution."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    prefix = f"engine.{result.engine}"
    telemetry.counter(f"{prefix}.runs").inc()
    telemetry.counter(f"{prefix}.interactions").inc(result.interactions)
    telemetry.counter(f"{prefix}.effective_interactions").inc(
        result.effective_interactions
    )
    if result.converged:
        telemetry.counter(f"{prefix}.converged").inc()
    telemetry.histogram(f"{prefix}.interactions_hist").record(result.interactions)
    telemetry.histogram(f"{prefix}.elapsed_seconds").record(result.elapsed)


def record_ensemble_batch(
    *,
    replicates: int,
    finisher_replicates: int,
    vector_steps: int,
) -> None:
    """Emit the ensemble engine's vectorized/finisher hand-off stats."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.counter("engine.ensemble.batches").inc()
    telemetry.counter("engine.ensemble.replicates").inc(replicates)
    telemetry.counter("engine.ensemble.retired_vectorized").inc(
        replicates - finisher_replicates
    )
    telemetry.counter("engine.ensemble.finisher_replicates").inc(finisher_replicates)
    telemetry.counter("engine.ensemble.vector_steps").inc(vector_steps)
    telemetry.gauge("engine.ensemble.last_finisher_fraction").set(
        finisher_replicates / replicates if replicates else 0.0
    )


def record_kernel_compile(backend: str, seconds: float) -> None:
    """Record one compiled-kernel build (Numba JIT or C toolchain).

    The pure-Python fallback backend never compiles anything and emits
    nothing; the counter/histogram pair therefore measures exactly the
    one-time native-tier warm-up cost a process pays.
    """
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.counter("engine.kernel.compiles").inc()
    telemetry.gauge("engine.kernel.last_backend_is_native").set(
        0.0 if backend == "python" else 1.0
    )
    telemetry.histogram("engine.kernel.compile_seconds").record(seconds)


def record_parallel_shards(*, shards: int, workers: int) -> None:
    """Record one parallel-ensemble batch's shard fan-out."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.counter("engine.parallel.shards").inc(shards)
    telemetry.counter("engine.parallel.batches").inc()
    telemetry.gauge("engine.parallel.last_workers").set(float(workers))


def record_trialset(ts: "TrialSet", *, cached: bool, elapsed: float) -> None:
    """Emit the runner-level metrics for one :func:`run_trials` call."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.counter("runner.calls").inc()
    telemetry.counter("runner.trials").inc(ts.trials)
    interactions = int(ts.interactions.sum())
    effective = int(ts.effective_interactions.sum())
    telemetry.counter("runner.interactions").inc(interactions)
    telemetry.counter("runner.effective_interactions").inc(effective)
    telemetry.gauge("runner.last_effective_ratio").set(
        effective / interactions if interactions else 0.0
    )
    hist = telemetry.histogram("runner.trial_interactions")
    for value in ts.interactions.tolist():
        hist.record(value)
    if not cached:
        telemetry.histogram("runner.point_seconds").record(elapsed)


def record_cache_lookup(hit: bool) -> None:
    """Count one trial-cache consultation by the runner."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.counter("runner.cache.hits" if hit else "runner.cache.misses").inc()


def record_chunk_seconds(elapsed: float) -> None:
    """Record one trial chunk's wall time (serial and pooled paths)."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.histogram("runner.chunk_seconds").record(elapsed)


def record_shard_write(*, rows: int, size: int) -> None:
    """Count one columnar shard flush (rows and on-disk bytes)."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.counter("results.shards.written").inc()
    telemetry.counter("results.shards.bytes").inc(size)
    telemetry.counter("results.shards.rows").inc(rows)


def record_scan_rows(rows: int) -> None:
    """Count rows streamed out of a columnar store by a scan."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.counter("results.shards.scan_rows").inc(rows)
