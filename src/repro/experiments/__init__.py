"""Experiment harness: one module per paper figure/table plus ablations.

See :mod:`repro.experiments.cli` for the command-line interface and
DESIGN.md for the experiment index (figure -> module -> bench target).
"""

from .common import DEFAULT_SEED, point_seed
from .fig3_vary_n import run_fig3
from .fig4_grouping import run_fig4
from .fig5_scaling_n import run_fig5
from .fig6_scaling_k import run_fig6
from .state_table import run_state_table
from .uniformity_gap import run_uniformity_gap
from .engine_ablation import run_engine_ablation
from .distribution import run_distribution
from .lowerbound import run_lowerbound
from .report import run_report
from .exact_validation import run_exact_validation
from .graph_density import run_graph_density
from .trajectory import run_trajectory

__all__ = [
    "DEFAULT_SEED",
    "point_seed",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_state_table",
    "run_uniformity_gap",
    "run_engine_ablation",
    "run_exact_validation",
    "run_graph_density",
    "run_distribution",
    "run_report",
    "run_lowerbound",
    "run_trajectory",
]
