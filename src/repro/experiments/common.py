"""Shared plumbing for the experiment harness.

Every experiment module follows the same conventions:

* ``run_<name>(**params) -> ResultTable`` does the work with explicit
  parameters defaulting to the paper's full-scale settings;
* ``QUICK_PARAMS`` holds a reduced parameter set that exercises the
  same code path in seconds (used by CI, the benchmarks and ``--quick``);
* ``render_<name>(table) -> str`` produces the terminal figure.

Seeds: every experiment derives per-point master seeds from a single
experiment seed with :func:`point_seed`, hashing the parameter tuple,
so adding or re-ordering sweep points never changes other points'
results.
"""

from __future__ import annotations

import hashlib
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable

from ..io.results import ResultTable

__all__ = [
    "point_seed",
    "ProgressPrinter",
    "trial_progress",
    "write_outputs",
    "DEFAULT_SEED",
]

#: Master seed used by all experiments unless overridden (the paper's
#: publication year + month, for flavour — any constant works).
DEFAULT_SEED = 201801


def point_seed(experiment_seed: int, *key: object) -> int:
    """A stable per-point seed derived from the experiment seed and key.

    Uses SHA-256 of the repr of the key tuple, so the mapping is
    deterministic across processes and Python versions (unlike
    ``hash()``, which is salted).
    """
    payload = repr((experiment_seed,) + key).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


@dataclass(slots=True)
class ProgressPrinter:
    """Lightweight progress reporting to stderr (quiet when disabled)."""

    enabled: bool = True
    _t0: float = 0.0

    def __post_init__(self) -> None:
        self._t0 = time.perf_counter()

    def __call__(self, message: str) -> None:
        if self.enabled:
            elapsed = time.perf_counter() - self._t0
            print(f"[{elapsed:8.1f}s] {message}", file=sys.stderr, flush=True)

    def trials(self, label: str) -> Callable[[int, int], None] | None:
        """A per-trial ``(done, total)`` callback for ``run_trials``.

        Prints quarter-way marks of long points (``total >= 8``) so a
        sweep spending minutes inside one parameter point is visibly
        alive; the point's own completion line still comes from the
        experiment loop.  Returns ``None`` when reporting is disabled
        so the runner skips callback dispatch entirely.

        Marks fire on *threshold crossings*, not exact multiples:
        chunk-reporting callers (the ensemble engine's ``run_batch``,
        ``workers > 1`` spans) jump ``done`` by whole chunks, so a mark
        is printed whenever the highest quarter boundary at or below
        ``done`` advances past the last one reported.
        """
        if not self.enabled:
            return None
        last_mark = 0

        def callback(done: int, total: int) -> None:
            nonlocal last_mark
            if total < 8 or done >= total:
                return
            step = max(1, total // 4)
            mark = (done // step) * step
            if mark > last_mark:
                last_mark = mark
                self(f"{label}: trial {done}/{total}")

        return callback


def trial_progress(progress: object, label: str) -> Callable[[int, int], None] | None:
    """Adapt an experiment's ``progress`` argument for ``run_trials``.

    Experiments accept any ``callable(message)`` for per-point lines;
    only :class:`ProgressPrinter` (or anything else exposing a
    ``trials(label)`` factory) additionally gets per-trial reporting.
    """
    factory = getattr(progress, "trials", None)
    return factory(label) if callable(factory) else None


def write_outputs(
    table: ResultTable,
    out_dir: str | Path | None,
    *,
    render: Callable[[ResultTable], str] | None = None,
) -> None:
    """Persist a result table (CSV + JSON + columnar) and its rendering.

    Does nothing when ``out_dir`` is None (pure in-memory use).  The
    ``<name>.columnar`` shard directory is the out-of-core twin of the
    JSON artifact — ``results query`` aggregates it without loading,
    and :func:`~repro.io.results.load_table` recognizes it directly.
    """
    if out_dir is None:
        return
    import shutil

    out = Path(out_dir)
    table.write_csv(out / f"{table.name}.csv")
    table.write_json(out / f"{table.name}.json")
    columnar = out / f"{table.name}.columnar"
    if columnar.exists():
        # Shards are append-only; a re-run replaces the directory.
        shutil.rmtree(columnar)
    table.to_columnar(columnar)
    if render is not None:
        (out / f"{table.name}.txt").write_text(render(table) + "\n")
