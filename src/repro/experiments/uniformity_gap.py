"""Uniformity-gap ablation: exact vs approximate partition quality.

The paper motivates its protocol against the approximate baseline [14]
purely by guarantees (groups of size >= n/(2k) vs sizes within 1).
This experiment measures the actual gap: run both protocols (plus
repeated bipartition where k is a power of two) to stability and
compare the final group-size spread and the minimum group size.

Expected shape: Algorithm 1 always lands at spread <= 1; the
interval-splitting baseline produces heavily skewed groups (shallow
interval-tree leaves soak up ~n/2 agents), while still meeting its
n/(2k) floor; repeated bipartition sits in between (spread <= h).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..engine.base import Engine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.approx_partition import approximate_k_partition
from ..protocols.kpartition import uniform_k_partition
from ..protocols.repeated_bipartition import repeated_bipartition
from .common import DEFAULT_SEED, point_seed

__all__ = ["run_uniformity_gap", "render_uniformity_gap", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {"k": 4, "n_values": (32, 64), "trials": 5}


def run_uniformity_gap(
    *,
    k: int = 4,
    n_values: Sequence[int] = (64, 128, 256, 512),
    trials: int = 30,
    seed: int = DEFAULT_SEED,
    engine: Engine | None = None,
    progress=None,
) -> ResultTable:
    """Compare partition quality across the three protocol families."""
    protocols = [("uniform-k-partition", uniform_k_partition(k))]
    protocols.append(("approx-k-partition", approximate_k_partition(k)))
    if k >= 2 and (k & (k - 1)) == 0:
        protocols.append(("repeated-bipartition", repeated_bipartition(k.bit_length() - 1)))

    table = ResultTable(
        name="uniformity_gap",
        params={"k": k, "n_values": list(n_values), "trials": trials, "seed": seed},
    )
    for label, protocol in protocols:
        for n in n_values:
            ts = run_trials(
                protocol,
                n,
                trials=trials,
                engine=engine,
                seed=point_seed(seed, "gap", label, n),
            )
            spreads = np.asarray(
                [int(r.group_sizes.max() - r.group_sizes.min()) for r in ts.results]
            )
            min_sizes = np.asarray([int(r.group_sizes.min()) for r in ts.results])
            table.append(
                protocol=label,
                k=k,
                n=n,
                trials=ts.trials,
                mean_spread=float(spreads.mean()),
                max_spread=int(spreads.max()),
                mean_min_group=float(min_sizes.mean()),
                worst_min_group=int(min_sizes.min()),
                guarantee_floor=n // (2 * k),
                mean_interactions=ts.mean_interactions,
            )
            if progress is not None:
                progress(f"gap {label} n={n}: spread={spreads.mean():.2f}")
    return table


def render_uniformity_gap(table: ResultTable) -> str:
    header = (
        f"Uniformity gap at k={table.params.get('k')}: "
        "group-size spread and minimum group size per protocol\n"
        "(uniform-k-partition should show spread <= 1; the approximate\n"
        " baseline only guarantees min group >= n/(2k))\n"
    )
    return header + table.render(floatfmt=".2f")
