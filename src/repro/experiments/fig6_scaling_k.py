"""Figure 6 — scaling with the number of groups k at fixed n = 960.

Paper setting: fix n = 960 and sweep k over divisors of 960 (so
n mod k = 0), plotting mean interactions over 100 trials on a
*logarithmic* axis.  Conclusion: the interaction count grows
exponentially with k.  The paper's explanation: completing a grouping
requires an ``m``-state agent to meet ``k - 2`` free agents without
ever meeting another ``m``-state agent (which would trigger the
rule-8 teardown), and the probability of that streak decays
exponentially in k.

The count-based engine's null skipping is what makes this sweep
tractable in pure Python — at k = 10 a single execution exceeds
5 * 10^7 interactions of which only ~1% are effective.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..analysis.convergence import fit_exponential
from ..engine.base import Engine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .ascii_plot import line_plot
from .common import DEFAULT_SEED, point_seed, trial_progress

__all__ = ["run_fig6", "render_fig6", "exponential_fit", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {
    "n": 120,
    "ks": (3, 4, 5, 6),
    "trials": 5,
}


def run_fig6(
    *,
    n: int = 960,
    ks: Sequence[int] = (3, 4, 5, 6, 8, 10),
    trials: int = 100,
    seed: int = DEFAULT_SEED,
    engine: Engine | str | None = None,
    progress=None,
) -> ResultTable:
    """Sweep k at fixed n (every k must divide n, as in the paper)."""
    for k in ks:
        if n % k:
            raise ValueError(f"k = {k} does not divide n = {n}; the paper keeps n mod k = 0")
    table = ResultTable(
        name="fig6_scaling_k",
        params={"n": n, "ks": list(ks), "trials": trials, "seed": seed},
    )
    for k in ks:
        protocol = uniform_k_partition(k)
        ts = run_trials(
            protocol,
            n,
            trials=trials,
            engine=engine,
            seed=point_seed(seed, "fig6", k, n),
            progress=trial_progress(progress, f"fig6 k={k}"),
        )
        table.append(
            k=k,
            n=n,
            trials=ts.trials,
            mean_interactions=ts.mean_interactions,
            std_interactions=ts.std_interactions,
            sem_interactions=ts.sem_interactions,
            mean_effective=float(ts.effective_interactions.mean()),
        )
        if progress is not None:
            progress(f"fig6 k={k}: mean={ts.mean_interactions:.3g}")
    return table


def render_fig6(table: ResultTable) -> str:
    ks = [float(v) for v in table.column("k")]
    ys = [float(v) for v in table.column("mean_interactions")]
    n = table.params.get("n", "?")
    plot = line_plot(
        {"mean interactions": (ks, ys)},
        title=f"Figure 6: interactions vs k at n = {n} (log y)",
        xlabel="k (number of groups)",
        ylabel="mean interactions",
        logy=True,
    )
    fit = exponential_fit(table)
    return (
        f"{plot}\n\n"
        f"semi-log fit: y = {fit.amplitude:.3g} * {fit.exponent:.2f}^k "
        f"(R2 = {fit.r_squared:.3f}) -> growth factor per unit k = {fit.exponent:.2f}"
    )


def exponential_fit(table: ResultTable):
    """Exponential fit of mean interactions vs k (the paper's claim)."""
    ks = [float(v) for v in table.column("k")]
    ys = [float(v) for v in table.column("mean_interactions")]
    return fit_exponential(ks, ys)
