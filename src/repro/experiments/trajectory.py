"""Convergence trajectories (extension beyond the paper's figures).

The paper reports only the total interaction count; this experiment
records *how* the partition forms: per-group sizes sampled along a
single execution.  The trajectories visualize the mechanism behind
Figure 4 — groups fill in lockstep (Lemma 1 forces #g_1 >= #g_2 >= ...
>= #g_k at all times), with long plateaus while a chain waits for free
agents and occasional dips when rule 8 tears a partial chain down.
"""

from __future__ import annotations

from ..engine.base import Engine
from ..engine.batch import BatchEngine
from ..engine.metrics import GroupSizeRecorder
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .ascii_plot import line_plot
from .common import DEFAULT_SEED

__all__ = ["run_trajectory", "render_trajectory", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {"k": 3, "n": 30, "samples": 40}


def run_trajectory(
    *,
    k: int = 4,
    n: int = 120,
    samples: int = 120,
    seed: int = DEFAULT_SEED,
    engine: Engine | None = None,
    progress=None,
) -> ResultTable:
    """Record ~``samples`` group-size snapshots along one execution.

    Long-format rows: (interactions, group, size).  Uses the batch
    engine so the callback sees exact interaction indices.
    """
    protocol = uniform_k_partition(k)
    if engine is None:
        engine = BatchEngine()
    # First pass to size the stride, then the recorded pass (same seed,
    # same execution, since the engine is deterministic per seed).
    probe = engine.run(protocol, n, seed=seed)
    stride = max(probe.effective_interactions // samples, 1)
    recorder = GroupSizeRecorder(protocol, stride=stride)
    result = engine.run(protocol, n, seed=seed, on_effective=recorder)
    assert result.interactions == probe.interactions

    table = ResultTable(
        name="trajectory",
        params={"k": k, "n": n, "seed": seed, "stride": stride,
                "total_interactions": result.interactions},
    )
    # The recorder's prime/finalize hooks guarantee the first row is the
    # initial configuration and the last row the stable one, so the
    # table needs no manual endpoint patching.
    times, sizes = recorder.as_arrays()
    for t, row in zip(times, sizes):
        for g in range(k):
            table.append(
                interactions=int(t),
                group=g + 1,
                size=int(row[g]),
            )
    if progress is not None:
        progress(
            f"trajectory k={k} n={n}: {result.interactions} interactions, "
            f"{len(times)} samples"
        )
    return table


def render_trajectory(table: ResultTable) -> str:
    k = int(table.params.get("k", 0)) or max(int(r["group"]) for r in table.rows)
    series = {}
    for g in range(1, k + 1):
        sub = table.where(group=g)
        series[f"group {g}"] = (sub.column("interactions"), sub.column("size"))
    n = table.params.get("n", "?")
    plot = line_plot(
        series,
        title=f"Group sizes along one execution (k={k}, n={n})",
        xlabel="interactions",
        ylabel="group size",
    )
    # Lemma 1 in action: report how often the staircase ordering held.
    times = sorted({int(r["interactions"]) for r in table.rows})
    ordered = 0
    for t in times:
        sizes = [0] * k
        for r in table.rows:
            if int(r["interactions"]) == t:
                sizes[int(r["group"]) - 1] = int(r["size"])
        gk = sizes[-1]
        if all(s >= gk for s in sizes):
            ordered += 1
    return (
        f"{plot}\n\n"
        f"Lemma-1 staircase (#g_x >= #g_k) held at {ordered}/{len(times)} samples"
    )
