"""Mechanized space lower bound (extension beyond the paper).

The paper's optimality claim chains through [25]: four states are
necessary for symmetric uniform bipartition with designated initial
states under global fairness.  This experiment re-establishes the
necessity direction by brute force: it enumerates *every* deterministic
symmetric rule table on 2 and 3 states with every surjective group map
(118,130 candidates in total), model-checks each on n = 3..6, and
reports the survivor count — zero, confirming that 4 states are needed.

The run also includes the positive control (the shipped 4-state
protocol passes the identical checker on every tested n) and, as a
by-product, the "near miss" census: how many 3-state candidates can
balance populations up to n = 5 before n = 6 kills them (eight).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..analysis.search import search_lower_bound, solves_uniform_partition
from ..io.results import ResultTable
from .common import DEFAULT_SEED

__all__ = ["run_lowerbound", "render_lowerbound", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {"state_counts": (2,), "ks": (2,), "ns": (3, 4, 5, 6), "include_asymmetric": True}

#: The shipped 4-state bipartition protocol in the search encoding
#: (states: 0=initial, 1=initial', 2=g1, 3=g2; groups: g2 alone).
CONTROL_RULES = {
    (0, 0): (1, 1),
    (1, 1): (0, 0),
    (0, 1): (2, 3),
    (0, 2): (1, 2),
    (0, 3): (1, 3),
    (1, 2): (0, 2),
    (1, 3): (0, 3),
}
CONTROL_GROUPS = (0, 0, 0, 1)


def run_lowerbound(
    *,
    state_counts: Sequence[int] = (2, 3),
    ks: Sequence[int] = (2, 3),
    ns: Sequence[int] = (3, 4, 5, 6),
    include_asymmetric: bool = True,
    seed: int = DEFAULT_SEED,  # unused; harness uniformity
    progress=None,
) -> ResultTable:
    """Exhaustive protocol search per (state count, k) pair.

    With ``include_asymmetric=True`` (default) each feasible pair is
    searched twice: symmetric protocols only, and the full class with
    symmetry-breaking same-state rules.  Pairs with fewer states than
    groups are skipped (no surjective group map exists).  Findings:

    * k = 2: zero symmetric survivors at 2-3 states, but asymmetric
      3-state survivors exist (``(initial, initial) -> (A, B)``) —
      the price of symmetry is one state;
    * k = 3: zero survivors at 3 states even asymmetrically, so
      uniform 3-partition needs >= 4 states — strictly above the
      trivial Omega(k) = 3 bound.
    """
    table = ResultTable(
        name="lowerbound",
        params={
            "state_counts": list(state_counts),
            "ks": list(ks),
            "ns": list(ns),
            "include_asymmetric": include_asymmetric,
        },
    )
    variants = [True] + ([False] if include_asymmetric else [])
    for s in state_counts:
        for k in ks:
            if s < k:
                continue  # no surjective group map
            for symmetric in variants:
                result = search_lower_bound(
                    s, k, ns=ns, symmetric=symmetric, progress=progress
                )
                table.append(
                    num_states=s,
                    k=k,
                    symmetric=symmetric,
                    ns=",".join(map(str, result.ns)),
                    candidates=result.candidates,
                    pruned=result.pruned,
                    survivors=len(result.survivors),
                    lower_bound_holds=result.lower_bound_holds,
                )
                if progress is not None:
                    progress(
                        f"lowerbound S={s} k={k} "
                        f"{'sym' if symmetric else 'asym'}: "
                        f"{result.candidates} candidates, "
                        f"{len(result.survivors)} survivors"
                    )
    # Positive control: the known 4-state protocol must pass every n.
    control_ok = all(
        solves_uniform_partition(CONTROL_RULES, CONTROL_GROUPS, n, 4) for n in ns
    )
    table.append(
        num_states=4,
        k=2,
        symmetric=True,
        ns=",".join(map(str, ns)),
        candidates=1,
        pruned=0,
        survivors=1 if control_ok else 0,
        lower_bound_holds=False,  # a survivor exists, as it must
    )
    return table


def render_lowerbound(table: ResultTable) -> str:
    header = (
        "Mechanized space lower bounds for uniform k-partition\n"
        "(designated initial states, global fairness).\n"
        "k=2 symmetric: zero survivors at 2-3 states + the surviving\n"
        "4-state control = machine-checked necessity of 4 states ([25],\n"
        "the bound behind the paper's optimality claim).  k=2 asymmetric:\n"
        "3 states suffice - the price of symmetry is exactly one state.\n"
        "k=3: zero survivors at 3 states even asymmetrically, so uniform\n"
        "3-partition needs >= 4 states - strictly above Omega(k) = 3.\n"
    )
    verdict_ok = all(
        (row["survivors"] == 0) == bool(row["lower_bound_holds"])
        for row in table.rows
    )
    four = [r for r in table.rows if r["num_states"] == 4 and r["k"] == 2]
    control = bool(four and four[0]["survivors"] == 1)
    return (
        header
        + table.render()
        + f"\n\npositive control (4-state protocol passes): {control}"
        + f"\ninternal consistency: {verdict_ok}"
    )
