"""Stabilization-time distribution (extension beyond the paper).

The paper reports only *means* over 100 executions.  The distribution
behind those means is strongly right-skewed: most executions finish
quickly, but runs in which chains repeatedly collide (rule 8) or the
final grouping keeps missing its free agents pay a long tail.  This
experiment quantifies the shape — quantiles, skewness, and the
mean/median ratio — because it affects how many trials one needs for a
stable mean (and explains the jitter visible in the paper's Figure 3).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..engine.base import Engine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .common import DEFAULT_SEED, point_seed

__all__ = ["run_distribution", "render_distribution", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {"points": ((3, 30),), "trials": 200}


def run_distribution(
    *,
    points=((3, 60), (4, 60), (6, 60), (4, 120)),
    trials: int = 1000,
    seed: int = DEFAULT_SEED,
    engine: Engine | None = None,
    progress=None,
) -> ResultTable:
    """Estimate the stabilization-time distribution per (k, n)."""
    table = ResultTable(
        name="distribution",
        params={"points": [list(p) for p in points], "trials": trials, "seed": seed},
    )
    for k, n in points:
        protocol = uniform_k_partition(k)
        ts = run_trials(
            protocol, n, trials=trials, engine=engine,
            seed=point_seed(seed, "dist", k, n),
        )
        x = ts.interactions.astype(np.float64)
        q = np.quantile(x, [0.05, 0.25, 0.5, 0.75, 0.95, 0.99])
        table.append(
            k=k,
            n=n,
            trials=trials,
            mean=float(x.mean()),
            median=float(q[2]),
            p05=float(q[0]),
            p25=float(q[1]),
            p75=float(q[3]),
            p95=float(q[4]),
            p99=float(q[5]),
            mean_over_median=float(x.mean() / q[2]),
            skewness=float(stats.skew(x)),
        )
        if progress is not None:
            progress(
                f"dist k={k} n={n}: mean={x.mean():.0f} median={q[2]:.0f} "
                f"p99={q[5]:.0f}"
            )
    return table


def render_distribution(table: ResultTable) -> str:
    header = (
        "Stabilization-time distribution (the paper reports only means).\n"
        "mean/median > 1 and positive skewness quantify the right tail\n"
        "from repeated chain collisions and final-grouping waits.\n"
    )
    return header + table.render(floatfmt=".2f")
