"""Terminal plotting — the offline stand-in for the paper's figures.

The execution environment has no plotting stack, so the harness renders
each figure as characters: scatter/line charts for Figures 3, 5 and 6
and horizontal stacked bars for Figure 4.  CSV output accompanies every
figure for external re-plotting.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = ["line_plot", "stacked_bars"]

_MARKERS = "ox+*#@%&"
_BLOCKS = "█▓▒░◆◇●○"


def _axis_ticks(lo: float, hi: float, count: int) -> list[float]:
    if hi <= lo:
        return [lo] * count
    return [lo + (hi - lo) * i / (count - 1) for i in range(count)]


def line_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
    width: int = 70,
    height: int = 20,
    logy: bool = False,
) -> str:
    """Render labelled (x, y) series as a character scatter plot.

    Each series gets a distinct marker; overlapping points show the
    marker of the last series drawn.  With ``logy`` the y axis is
    log10-scaled (all y must be positive).
    """
    if not series:
        return f"{title}\n(no data)"
    xs_all = [float(x) for xs, _ in series.values() for x in xs]
    ys_all = [float(y) for _, ys in series.values() for y in ys]
    if not xs_all:
        return f"{title}\n(no data)"
    if logy and min(ys_all) <= 0:
        raise ValueError("logy requires positive y values")

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(map(ty, ys_all)), max(map(ty, ys_all))
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    for (label, (xs, ys)), marker in zip(series.items(), _MARKERS):
        for x, y in zip(xs, ys):
            col = round((float(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((ty(float(y)) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    def ylabel_of(row: int) -> str:
        frac = (height - 1 - row) / (height - 1)
        v = y_lo + frac * (y_hi - y_lo)
        if logy:
            v = 10**v
        return f"{v:>10.3g}"

    lines: list[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f"{ylabel}  [{legend}]")
    for row in range(height):
        prefix = ylabel_of(row) if row % max(height // 5, 1) == 0 else " " * 10
        lines.append(f"{prefix} |{''.join(grid[row])}")
    lines.append(" " * 10 + "-" * (width + 2))
    tick_vals = _axis_ticks(x_lo, x_hi, 5)
    ticks = "".join(f"{v:<{(width // 4)}.4g}" for v in tick_vals[:-1]) + f"{tick_vals[-1]:.4g}"
    lines.append(" " * 11 + ticks)
    lines.append(" " * 11 + xlabel + ("   [log y]" if logy else ""))
    return "\n".join(lines)


def stacked_bars(
    rows: Sequence[tuple[str, Sequence[float]]],
    layer_labels: Sequence[str],
    *,
    title: str = "",
    width: int = 60,
    value_label: str = "",
) -> str:
    """Render horizontal stacked bars (one per row).

    ``rows`` pairs a row label with its layer values; all bars share a
    common scale so relative totals are comparable — the layout used
    for Figure 4's per-grouping decomposition (one bar per n, one layer
    per grouping).
    """
    if not rows:
        return f"{title}\n(no data)"
    totals = [sum(values) for _, values in rows]
    peak = max(totals) if totals else 1.0
    if peak <= 0:
        peak = 1.0
    label_w = max(len(label) for label, _ in rows)

    lines: list[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_BLOCKS[i % len(_BLOCKS)]}={label}" for i, label in enumerate(layer_labels)
    )
    lines.append(f"[{legend}]")
    for (label, values), total in zip(rows, totals):
        bar = ""
        consumed = 0
        for i, v in enumerate(values):
            # Cumulative rounding keeps the bar length proportional to
            # the running total even when layers are tiny.
            target = round(sum(values[: i + 1]) / peak * width)
            seg = max(target - consumed, 0)
            bar += _BLOCKS[i % len(_BLOCKS)] * seg
            consumed += seg
        lines.append(f"{label:>{label_w}} |{bar:<{width}}| {total:,.0f} {value_label}")
    return "\n".join(lines)
