"""Engine ablation: what the null-skipping jump chain buys.

DESIGN.md claims the count-based engine makes the paper's Figure 6
regime tractable because it pays only per-*effective* interaction.
This experiment measures it: run the same workloads on all three
engines and record wall-clock time, interactions simulated per second,
and the effective-interaction fraction.  It also cross-checks that the
engines agree on the physics (mean interaction counts within noise).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..engine.agent_based import AgentBasedEngine
from ..engine.batch import BatchEngine
from ..engine.count_based import CountBasedEngine
from ..engine.ensemble import EnsembleEngine
from ..engine.hybrid import HybridEngine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .common import DEFAULT_SEED, point_seed

__all__ = ["run_engine_ablation", "render_engine_ablation", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {"points": ((3, 30), (4, 40)), "trials": 4}


def run_engine_ablation(
    *,
    points: Sequence[tuple[int, int]] = ((4, 120), (6, 240), (8, 480), (6, 960)),
    trials: int = 10,
    seed: int = DEFAULT_SEED,
    progress=None,
) -> ResultTable:
    """Time all the engines on (k, n) workload points."""
    engines = [
        AgentBasedEngine(),
        BatchEngine(),
        CountBasedEngine(),
        HybridEngine(),
        EnsembleEngine(),
    ]
    table = ResultTable(
        name="engine_ablation",
        params={"points": [list(p) for p in points], "trials": trials, "seed": seed},
    )
    for k, n in points:
        protocol = uniform_k_partition(k)
        for engine in engines:
            ts = run_trials(
                protocol,
                n,
                trials=trials,
                engine=engine,
                # Same seed for every engine: batch/agent runs are then
                # identical executions, and count sees the same law.
                seed=point_seed(seed, "ablation", k, n),
            )
            wall = np.asarray([r.elapsed for r in ts.results])
            eff = ts.effective_interactions.astype(np.float64)
            total = ts.interactions.astype(np.float64)
            table.append(
                engine=engine.name,
                k=k,
                n=n,
                trials=ts.trials,
                mean_interactions=ts.mean_interactions,
                mean_effective=float(eff.mean()),
                effective_fraction=float((eff / total).mean()),
                mean_wall_seconds=float(wall.mean()),
                interactions_per_second=float((total / np.maximum(wall, 1e-9)).mean()),
            )
            if progress is not None:
                progress(
                    f"ablation k={k} n={n} {engine.name}: "
                    f"{wall.mean()*1e3:.1f} ms/run"
                )
    return table


def render_engine_ablation(table: ResultTable) -> str:
    header = (
        "Engine ablation: same workload on agent / batch / count engines.\n"
        "The count engine pays O(#rules) per EFFECTIVE interaction, the\n"
        "agent engines ~O(1) per interaction: batch wins at small n where\n"
        "most interactions are effective; count wins at large n where the\n"
        "effective fraction collapses (the Figure 5/6 regime).\n"
    )
    lines = [header + table.render(floatfmt=".4g")]
    # Per-point speedup summary (values < 1 mean batch was faster).
    for k, n in sorted({(row["k"], row["n"]) for row in table.rows}):
        sub = table.where(k=k, n=n)
        walls = {row["engine"]: float(row["mean_wall_seconds"]) for row in sub.rows}
        fracs = {row["engine"]: float(row["effective_fraction"]) for row in sub.rows}
        if "count" in walls and "batch" in walls and walls["count"] > 0:
            lines.append(
                f"k={k} n={n}: count vs batch = "
                f"{walls['batch'] / walls['count']:.1f}x "
                f"(effective fraction {fracs.get('count', float('nan')):.3f})"
            )
    return "\n".join(lines)
