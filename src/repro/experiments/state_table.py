"""State-complexity table (Table S in DESIGN.md).

The paper's evaluation section has no numeric tables, but its central
claims are about space: Algorithm 1 uses ``3k - 2`` states, the
approximate baseline [14] uses ``k(k+3)/2``, any protocol needs at
least ``k``, and repeated bipartition covers only powers of two.  This
experiment materializes those claims as a table and — crucially —
verifies each formula against the number of states the *implemented*
protocol actually constructs.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..analysis.theory import state_complexity_row
from ..io.results import ResultTable
from ..protocols.approx_partition import approximate_k_partition
from ..protocols.kpartition import uniform_k_partition
from ..protocols.repeated_bipartition import repeated_bipartition
from .common import DEFAULT_SEED

__all__ = ["run_state_table", "render_state_table", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {"ks": (2, 3, 4, 8)}


def run_state_table(
    *,
    ks: Sequence[int] = tuple(range(2, 17)),
    seed: int = DEFAULT_SEED,  # unused; kept for harness uniformity
    progress=None,
) -> ResultTable:
    """Build the comparison table, verifying formulas against code."""
    table = ResultTable(name="state_table", params={"ks": list(ks)})
    for k in ks:
        row = state_complexity_row(k)
        proposed_actual = uniform_k_partition(k).num_states
        approx_actual = approximate_k_partition(k).num_states
        if row.repeated_bipartition is not None:
            h = k.bit_length() - 1
            repeated_actual = repeated_bipartition(h).num_states
        else:
            repeated_actual = None
        verified = (
            proposed_actual == row.proposed
            and approx_actual == row.approx_baseline
            and (repeated_actual is None or repeated_actual == row.repeated_bipartition)
        )
        table.append(
            k=k,
            lower_bound=row.lower_bound,
            proposed_3k_minus_2=row.proposed,
            proposed_actual=proposed_actual,
            approx_k_k3_over_2=row.approx_baseline,
            approx_actual=approx_actual,
            repeated_bipartition=row.repeated_bipartition,
            ratio_to_lower_bound=round(row.proposed_over_lower, 3),
            formulas_verified=verified,
        )
        if progress is not None:
            progress(f"state-table k={k}: verified={verified}")
    return table


def render_state_table(table: ResultTable) -> str:
    header = (
        "State complexity: proposed protocol vs baselines\n"
        "(proposed_actual / approx_actual are counted from the implementations)\n"
    )
    return header + table.render(floatfmt=".3f")
