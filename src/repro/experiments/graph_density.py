"""Convergence vs interaction-graph density (extension).

The paper's protocol is specified for the complete interaction graph;
the graph-bipartition follow-up works on arbitrary connected graphs by
letting committed group states migrate.  This experiment measures what
that generality costs: run graph bipartition over a density sweep —
cycle (degree 2), random-regular graphs of growing degree, complete —
at fixed n and compare stabilization time and convergence rate.

Shape: two costs compete.  On sparse graphs the two remaining free
tokens must random-walk toward a shared edge before the partner-commit
rule can fire, so the meeting time dominates and the cycle is slowest.
On dense graphs meeting is easy but the endgame pays *flavour churn*:
the big committed crowd keeps resetting the tokens' flavours on every
hop (the mobility rules), so the tokens often meet with equal flavours
and the commit rule is disabled.  At small n the meeting cost wins
(monotone: cycle slowest, complete fastest); at larger n the churn
cost overtakes and the complete graph falls behind mid-degree regular
graphs — the sweep exists to expose exactly that crossover.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..engine.base import Engine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.graph_bipartition import graph_bipartition
from .common import DEFAULT_SEED, point_seed

__all__ = ["run_graph_density", "render_graph_density", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {
    "n": 60,
    "degrees": (4, 8),
    "trials": 5,
    "max_interactions": 2_000_000,
}


def _scheduler_sweep(n: int, degrees: Sequence[int]) -> list[tuple[str, int]]:
    """(scheduler spec, degree) points, sparse to dense.

    Degree 2 is always the cycle, never ``graph:regular:2`` — a random
    2-regular graph is a union of cycles and may be disconnected, which
    makes bipartition impossible, so it would measure graph
    connectivity rather than protocol behaviour.
    """
    sweep = [("graph:cycle", 2)]
    for d in sorted(set(degrees)):
        if not 2 < d < n - 1:
            continue
        if (n * d) % 2:
            continue  # no d-regular graph on n vertices exists
        sweep.append((f"graph:regular:{d}", d))
    sweep.append(("graph:complete", n - 1))
    return sweep


def run_graph_density(
    *,
    n: int = 240,
    degrees: Sequence[int] = (4, 8, 16, 32, 64),
    trials: int = 20,
    seed: int = DEFAULT_SEED,
    engine: Engine | str | None = None,
    max_interactions: int = 20_000_000,
    progress=None,
) -> ResultTable:
    """Sweep graph bipartition over interaction-graph densities."""
    protocol = graph_bipartition()
    table = ResultTable(
        name="graph_density",
        params={
            "n": n,
            "degrees": list(degrees),
            "trials": trials,
            "seed": seed,
            "max_interactions": max_interactions,
        },
    )
    for scheduler, degree in _scheduler_sweep(n, degrees):
        ts = run_trials(
            protocol,
            n,
            trials=trials,
            engine=engine,
            scheduler=scheduler,
            seed=point_seed(seed, "density", scheduler, n),
            max_interactions=max_interactions,
            require_convergence=False,
        )
        converged = [r for r in ts.results if r.converged]
        interactions = np.asarray(
            [r.interactions for r in converged], dtype=np.float64
        )
        table.append(
            scheduler=scheduler,
            degree=degree,
            density=degree / (n - 1),
            trials=ts.trials,
            converged=len(converged),
            mean_interactions=(
                float(interactions.mean()) if len(converged) else float("nan")
            ),
            max_interactions_observed=(
                int(interactions.max()) if len(converged) else 0
            ),
            per_agent=(
                float(interactions.mean() / n) if len(converged) else float("nan")
            ),
        )
        if progress is not None:
            progress(
                f"density {scheduler}: {len(converged)}/{ts.trials} converged"
            )
    return table


def render_graph_density(table: ResultTable) -> str:
    header = (
        f"Graph bipartition at n={table.params.get('n')}: stabilization "
        "cost vs interaction-graph density\n"
        "(sparse graphs pay a free-token random walk to meet; dense graphs\n"
        " pay flavour-reset churn from the committed crowd — mid-degree\n"
        " regular graphs can beat both extremes)\n"
    )
    return header + table.render(floatfmt=".2f")
