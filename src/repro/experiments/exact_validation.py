"""Exact-vs-simulated validation (beyond the paper).

The paper's conclusion asks for the time complexity of uniform
k-partition under probabilistic fairness.  For small instances this
experiment *answers exactly*: it solves the first-step equations on
the reachable configuration chain
(:func:`repro.analysis.exact.expected_interactions_exact`) and places
the simulation engines' trial means next to the closed-form values.

This doubles as the strongest quantitative cross-validation in the
repository: a simulator bug that biased interaction counts by even a
percent would show up here as a multi-sigma discrepancy.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..analysis.exact import expected_interactions_exact
from ..engine.base import Engine
from ..engine.count_based import CountBasedEngine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .common import DEFAULT_SEED, point_seed

__all__ = ["run_exact_validation", "render_exact_validation", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {
    "points": ((2, 5), (3, 5)),
    "trials": 400,
}


def run_exact_validation(
    *,
    points: Sequence[tuple[int, int]] = ((2, 6), (2, 9), (3, 5), (3, 7), (3, 9), (4, 6)),
    trials: int = 2000,
    seed: int = DEFAULT_SEED,
    engine: Engine | None = None,
    progress=None,
) -> ResultTable:
    """Compare exact expected interactions with trial means per (k, n)."""
    if engine is None:
        engine = CountBasedEngine()
    table = ResultTable(
        name="exact_validation",
        params={"points": [list(p) for p in points], "trials": trials, "seed": seed},
    )
    for k, n in points:
        protocol = uniform_k_partition(k)
        exact = expected_interactions_exact(protocol, n)
        ts = run_trials(
            protocol, n, trials=trials, engine=engine,
            seed=point_seed(seed, "exact", k, n),
        )
        gap = ts.mean_interactions - exact.from_initial
        sigmas = abs(gap) / ts.sem_interactions if ts.sem_interactions else 0.0
        table.append(
            k=k,
            n=n,
            reachable_configs=exact.reachable,
            exact_mean=exact.from_initial,
            simulated_mean=ts.mean_interactions,
            sem=ts.sem_interactions,
            gap_in_sigmas=sigmas,
            trials=trials,
        )
        if progress is not None:
            progress(
                f"exact k={k} n={n}: exact={exact.from_initial:.2f} "
                f"sim={ts.mean_interactions:.2f} ({sigmas:.1f} sigma)"
            )
    return table


def render_exact_validation(table: ResultTable) -> str:
    header = (
        "Exact expected interactions (first-step analysis on the\n"
        "configuration chain) vs simulation trial means.\n"
        "A correct simulator keeps |gap| within a few sigma.\n"
    )
    worst = max((float(r["gap_in_sigmas"]) for r in table.rows), default=0.0)
    return header + table.render(floatfmt=".3f") + f"\nworst gap: {worst:.2f} sigma"
