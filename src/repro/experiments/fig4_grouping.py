"""Figure 4 — per-grouping interaction decomposition NI'_i.

The paper defines ``NI_i`` as the number of interactions until the
i-th set of agents in states ``g_1..g_k`` is complete (the i-th agent
enters ``g_k``; that set can never be torn down afterwards) and stacks
``NI'_i = NI_i - NI_{i-1}`` per n for k in {4, 6, 8}.  Two qualitative
claims:

1. ``NI'_1 < NI'_2 < ...`` — later groupings draw from a shrinking
   pool of free agents;
2. for ``n = c*k + k`` and ``c*k + (k+1)`` the final grouping accounts
   for **more than half** of all interactions.

The engines record the milestones via ``track_state=g_k``;
:func:`repro.analysis.grouping.decompose_groupings` aggregates them.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..analysis.grouping import GroupingDecomposition, decompose_groupings
from ..engine.base import Engine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .ascii_plot import stacked_bars
from .common import DEFAULT_SEED, point_seed, trial_progress

__all__ = ["run_fig4", "render_fig4", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {
    "ks": (4,),
    "n_values": tuple(range(8, 26, 2)),
    "trials": 8,
}


def run_fig4(
    *,
    ks: Sequence[int] = (4, 6, 8),
    n_values: Sequence[int] | None = None,
    n_max: int = 60,
    trials: int = 100,
    seed: int = DEFAULT_SEED,
    engine: Engine | str | None = None,
    progress=None,
) -> ResultTable:
    """Sweep n per k, decomposing interactions by grouping index.

    Long-format table: one row per (k, n, grouping index), where index
    ``i`` in ``1..floor(n/k)`` is the i-th grouping and index 0 labels
    the remainder phase (the n mod k leftover agents stabilizing after
    the final grouping).
    """
    table = ResultTable(
        name="fig4_grouping",
        params={
            "ks": list(ks),
            "n_values": list(n_values) if n_values is not None else None,
            "n_max": n_max,
            "trials": trials,
            "seed": seed,
        },
    )
    for k in ks:
        protocol = uniform_k_partition(k)
        ns = n_values if n_values is not None else range(k + 2, n_max + 1)
        for n in ns:
            if n < 3:
                continue
            ts = run_trials(
                protocol,
                n,
                trials=trials,
                engine=engine,
                seed=point_seed(seed, "fig4", k, n),
                track_state=f"g{k}",
                progress=trial_progress(progress, f"fig4 k={k} n={n}"),
            )
            decomp = decompose_groupings(ts, k)
            _append_decomposition(table, k, decomp)
            if progress is not None:
                progress(
                    f"fig4 k={k} n={n}: {decomp.num_groupings} groupings, "
                    f"last share={decomp.last_grouping_share:.2f}"
                )
    return table


def _append_decomposition(table: ResultTable, k: int, d: GroupingDecomposition) -> None:
    for i, inc in enumerate(d.mean_increments, start=1):
        table.append(
            k=k,
            n=d.n,
            grouping=i,
            mean_increment=float(inc),
            mean_total=d.mean_total,
            share=float(inc / d.mean_total) if d.mean_total else 0.0,
        )
    table.append(
        k=k,
        n=d.n,
        grouping=0,  # remainder phase
        mean_increment=float(d.mean_tail),
        mean_total=d.mean_total,
        share=float(d.mean_tail / d.mean_total) if d.mean_total else 0.0,
    )


def render_fig4(table: ResultTable, *, k: int | None = None) -> str:
    """Stacked-bar rendering (one bar per n) for one k."""
    ks = sorted({row["k"] for row in table.rows})
    if k is None:
        return "\n\n".join(render_fig4(table, k=kk) for kk in ks)
    sub = table.where(k=k)
    ns = sorted({row["n"] for row in sub.rows})
    max_groupings = max(
        (int(row["grouping"]) for row in sub.rows), default=0
    )
    rows = []
    for n in ns:
        by_grouping = {
            int(r["grouping"]): float(r["mean_increment"]) for r in sub.where(n=n).rows
        }
        values = [by_grouping.get(i, 0.0) for i in range(1, max_groupings + 1)]
        values.append(by_grouping.get(0, 0.0))  # remainder last
        rows.append((f"n={n}", values))
    labels = [f"{i}th" for i in range(1, max_groupings + 1)] + ["rem"]
    return stacked_bars(
        rows,
        labels,
        title=f"Figure 4 (k={k}): interactions per grouping (stacked)",
        value_label="interactions",
    )


def last_grouping_shares(table: ResultTable, k: int) -> dict[int, float]:
    """``n -> share of the final grouping`` for the paper's >1/2 claim."""
    sub = table.where(k=k)
    out: dict[int, float] = {}
    for n in sorted({int(r["n"]) for r in sub.rows}):
        groupings = [r for r in sub.where(n=n).rows if int(r["grouping"]) > 0]
        if groupings:
            last = max(groupings, key=lambda r: int(r["grouping"]))
            out[n] = float(last["share"])
    return out
