"""Scaling-law study — convergence cost at 10–100x paper scale.

The paper's figures stop near n = 1000.  This experiment sweeps
population sizes up to 10^5–10^6 for k up to 32, keeps *per-trial*
interaction counts (the bootstrap needs the raw samples, not just
means), fits ``interactions ~ a * n^b * (ln n)^c`` per k with
percentile-bootstrap confidence intervals, and reports where each
fitted curve crosses practical interaction budgets.

Scale notes:

* Population sizes are snapped to multiples of k (the paper's Figure 5
  trick) so the mod-k sawtooth does not contaminate the fit.
* The default grid is CI-sized.  The full-scale study is meant to run
  through the campaign layer — ``repro-campaign submit --grid scaling
  --n-max 1000000`` streams per-trial rows into a columnar sink and
  this experiment's fits can then be computed from the shard store —
  or directly with ``--engine count-jit`` / ``ensemble-parallel``,
  whose compiled jump-chain kernels make 10^6-agent trials tractable.
* Rows are per trial, so tables get big: ``write_outputs`` also emits
  a ``.columnar`` shard directory and ``results query`` aggregates it
  out of core.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..analysis.scaling import (
    DEFAULT_LOG_EXPONENT_GRID,
    ScalingFit,
    bootstrap_scaling_fit,
    budget_crossing,
)
from ..engine.base import Engine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .ascii_plot import line_plot
from .common import DEFAULT_SEED, point_seed, trial_progress

__all__ = [
    "run_scaling_law",
    "render_scaling_law",
    "scaling_report",
    "grid_points",
    "QUICK_PARAMS",
    "DEFAULT_BUDGETS",
]

QUICK_PARAMS: dict = {
    "ks": (2, 4),
    "n_values": (240, 480, 960, 1920),
    "trials": 6,
    "bootstrap": 40,
}

#: Interaction budgets the report locates crossings for.  On the
#: compiled kernel tier (BENCH_kernels.json) 1e8 interactions is
#: roughly a minute of single-core work — the budgets bracket
#: "interactive", "overnight", and "cluster" regimes.
DEFAULT_BUDGETS: tuple[float, ...] = (1e8, 1e10, 1e12)


def grid_points(
    ks: Sequence[int], n_values: Sequence[int]
) -> list[tuple[int, int]]:
    """The (k, n) sweep grid with n snapped to a multiple of k.

    Snapping removes the mod-k sawtooth from the fit; duplicates after
    snapping collapse.  Shared with the campaign grid builder
    (:mod:`repro.campaign.grids`) so a campaign run warms exactly the
    trial-cache keys this experiment asks for.
    """
    points: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    for k in ks:
        if k < 2:
            raise ValueError(f"k must be at least 2, got {k}")
        for n_raw in n_values:
            n = max(2 * k, round(n_raw / k) * k)
            if (k, n) not in seen:
                seen.add((k, n))
                points.append((k, n))
    return points


def run_scaling_law(
    *,
    ks: Sequence[int] = (2, 4, 8, 16, 32),
    n_values: Sequence[int] = (1_000, 2_000, 5_000, 10_000, 20_000, 50_000),
    trials: int = 20,
    seed: int = DEFAULT_SEED,
    engine: Engine | str | None = None,
    bootstrap: int = 200,
    progress=None,
) -> ResultTable:
    """Sweep the (k, n) grid keeping one row per trial.

    Per-trial rows (rather than per-point summaries) are the point of
    this experiment: the bootstrap resamples them, and the columnar
    backend is exercised at realistic row counts.
    """
    engine_name = engine if isinstance(engine, (str, type(None))) else engine.name
    table = ResultTable(
        name="scaling_law",
        params={
            "ks": list(ks),
            "n_values": list(n_values),
            "trials": trials,
            "seed": seed,
            "engine": engine_name,
            "bootstrap": bootstrap,
            "budgets": list(DEFAULT_BUDGETS),
        },
    )
    for k, n in grid_points(ks, n_values):
        protocol = uniform_k_partition(k)
        ts = run_trials(
            protocol,
            n,
            trials=trials,
            engine=engine,
            seed=point_seed(seed, "scaling-law", k, n),
            progress=trial_progress(progress, f"scaling-law k={k} n={n}"),
        )
        for trial in range(ts.trials):
            table.append(
                k=k,
                n=n,
                trial=trial,
                interactions=int(ts.interactions[trial]),
                effective_interactions=int(ts.effective_interactions[trial]),
                converged=bool(ts.results[trial].converged),
            )
        if progress is not None:
            progress(
                f"scaling-law k={k} n={n}: mean={ts.mean_interactions:.0f}"
            )
    return table


def scaling_report(
    table: ResultTable,
    *,
    budgets: Sequence[float] | None = None,
) -> dict[int, dict]:
    """Per-k fit + budget crossings from a per-trial table.

    Works identically on memory- and columnar-backed tables (both
    expose ``rows``).  Each entry carries the bootstrap
    :class:`~repro.analysis.scaling.ScalingFit` and, per budget, the
    population size where the fitted mean crosses it (``None`` when it
    never does below the bisection ceiling).

    The log-power c is constrained to the discrete physical grid
    :data:`~repro.analysis.scaling.DEFAULT_LOG_EXPONENT_GRID` — over a
    sweep's narrow ``ln n`` span the free 3-parameter fit is collinear
    (b and c trade off wildly at nearly equal residual), and a
    degenerate b would poison the budget crossings.
    """
    params = table.params
    resamples = int(params.get("bootstrap", 200) or 200)
    seed = int(params.get("seed", DEFAULT_SEED) or DEFAULT_SEED)
    if budgets is None:
        budgets = [float(b) for b in params.get("budgets", DEFAULT_BUDGETS)]
    samples: dict[int, dict[float, list[float]]] = {}
    for row in table.rows:
        k, n = int(row["k"]), float(row["n"])
        samples.setdefault(k, {}).setdefault(n, []).append(
            float(row["interactions"])
        )
    report: dict[int, dict] = {}
    for k in sorted(samples):
        if len(samples[k]) < 3:
            continue
        fit = bootstrap_scaling_fit(
            samples[k],
            resamples=resamples,
            seed=point_seed(seed, "scaling-law-bootstrap", k),
            log_exponent_grid=DEFAULT_LOG_EXPONENT_GRID,
        )
        report[k] = {
            "fit": fit,
            "crossings": {
                budget: budget_crossing(fit, budget) for budget in budgets
            },
        }
    return report


def _format_crossing(n: float | None) -> str:
    return "n/a" if n is None else f"n~{n:.3g}"


def render_scaling_law(table: ResultTable) -> str:
    """Terminal figure: mean curves, fitted laws with CIs, crossings."""
    means: dict[int, tuple[list[float], list[float]]] = {}
    acc: dict[tuple[int, float], list[float]] = {}
    for row in table.rows:
        acc.setdefault((int(row["k"]), float(row["n"])), []).append(
            float(row["interactions"])
        )
    for (k, n), values in sorted(acc.items()):
        xs, ys = means.setdefault(k, ([], []))
        xs.append(n)
        ys.append(sum(values) / len(values))
    plot = line_plot(
        {f"k={k}": series for k, series in sorted(means.items())},
        title="Scaling law: interactions vs n (n mod k = 0)",
        xlabel="n (population size)",
        ylabel="mean interactions",
    )
    report = scaling_report(table)
    lines = [plot, "", "fitted laws (y = a * n^b * ln(n)^c, bootstrap 95% CIs):"]
    for k, entry in sorted(report.items()):
        fit: ScalingFit = entry["fit"]
        lines.append(f"  k={k}: {fit.describe()}")
        crossings = "  ".join(
            f"{budget:.0e}:{_format_crossing(n)}"
            for budget, n in sorted(entry["crossings"].items())
        )
        lines.append(f"        budget crossings: {crossings}")
    if not report:
        lines.append("  (need >= 3 population sizes per k to fit)")
    return "\n".join(lines)
