"""Consolidated reproduction report: every paper claim, checked.

``repro-experiments report`` runs a calibrated slice of each experiment
and evaluates the paper's qualitative claims *programmatically*,
emitting a verdict table — a self-checking, regenerable version of
EXPERIMENTS.md's conclusions.  Thresholds and grids are fixed alongside
the seeds so the verdicts are deterministic.
"""

from __future__ import annotations

import numpy as np

from ..io.results import ResultTable
from .common import DEFAULT_SEED
from .exact_validation import run_exact_validation
from .fig3_vary_n import run_fig3, sawtooth_drops
from .fig4_grouping import last_grouping_shares, run_fig4
from .fig5_scaling_n import run_fig5, scaling_fits
from .fig6_scaling_k import exponential_fit, run_fig6
from .state_table import run_state_table
from .uniformity_gap import run_uniformity_gap

__all__ = ["run_report", "render_report", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {"quick": True}


def run_report(
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    trials: int | None = None,
    progress=None,
) -> ResultTable:
    """Run the claim checks; ``quick`` selects the reduced grids.

    ``trials`` overrides the per-experiment trial counts (mostly for
    testing the harness itself; the default grids are calibrated so the
    verdicts are stable).
    """
    table = ResultTable(name="report", params={"quick": quick, "seed": seed})

    def note(figure: str, claim: str, measured: str, ok: bool) -> None:
        table.append(figure=figure, claim=claim, measured=measured, verdict=bool(ok))
        if progress is not None:
            progress(f"report {figure}: {'PASS' if ok else 'FAIL'} - {claim}")

    # ----------------------------------------------------------- fig 3
    f3 = run_fig3(
        ks=(4,),
        n_values=tuple(range(8, 25, 1)) if quick else tuple(range(6, 61)),
        trials=trials or (60 if quick else 100),
        seed=seed,
    )
    means = {int(r["n"]): float(r["mean_interactions"]) for r in f3.where(k=4).rows}
    ns = sorted(means)
    note(
        "fig3",
        "interactions grow with n overall",
        f"mean({ns[-1]})={means[ns[-1]]:.0f} vs mean({ns[0]})={means[ns[0]]:.0f}",
        means[ns[-1]] > 2 * means[ns[0]],
    )
    drops = sawtooth_drops(f3, 4)
    note(
        "fig3",
        "the mean sometimes DROPS as n grows (mod-k sawtooth)",
        f"{len(drops)} drops in {len(ns)} points",
        len(drops) >= 1,
    )

    # ----------------------------------------------------------- fig 4
    f4 = run_fig4(
        ks=(4,),
        n_values=(16, 20) if quick else (16, 20, 24, 28, 32),
        trials=trials or (80 if quick else 100),
        seed=seed,
    )
    shares = last_grouping_shares(f4, 4)
    note(
        "fig4",
        "final grouping takes > 1/2 of interactions at n = c*k + k",
        ", ".join(f"n={n}: {s:.2f}" for n, s in sorted(shares.items())),
        all(s > 0.5 for s in shares.values()),
    )
    monotone_ok = True
    for n in sorted({int(r["n"]) for r in f4.rows}):
        incs = [
            float(r["mean_increment"])
            for r in sorted(
                (r for r in f4.where(n=n).rows if int(r["grouping"]) > 0),
                key=lambda r: int(r["grouping"]),
            )
        ]
        if not all(a <= b for a, b in zip(incs[1:], incs[2:])):
            monotone_ok = False
    note(
        "fig4",
        "NI' increments increase from the 2nd grouping on",
        "checked at every sweep point",
        monotone_ok,
    )

    # ----------------------------------------------------------- fig 5
    f5 = run_fig5(
        ks=(3, 4),
        n_units=(1, 2, 3, 4) if quick else (1, 2, 3, 4, 5, 6, 7, 8),
        base_n=60 if quick else 120,
        trials=trials or (30 if quick else 100),
        seed=seed,
    )
    fits = scaling_fits(f5)
    superlinear = all(p.exponent > 1.0 for p, _ in fits.values())
    subexponential = all(p.r_squared >= e.r_squared for p, e in fits.values())
    note(
        "fig5",
        "growth in n is superlinear",
        ", ".join(f"k={k}: b={p.exponent:.2f}" for k, (p, _) in sorted(fits.items())),
        superlinear,
    )
    note(
        "fig5",
        "growth in n is subexponential (power fit beats exponential fit)",
        ", ".join(
            f"k={k}: R2 {p.r_squared:.3f} vs {e.r_squared:.3f}"
            for k, (p, e) in sorted(fits.items())
        ),
        subexponential,
    )

    # ----------------------------------------------------------- fig 6
    f6 = run_fig6(
        n=120 if quick else 960,
        ks=(3, 4, 5, 6) if quick else (3, 4, 5, 6, 8, 10),
        trials=trials or (30 if quick else 100),
        seed=seed,
    )
    fit = exponential_fit(f6)
    note(
        "fig6",
        "interactions grow exponentially with k",
        f"semi-log fit base {fit.exponent:.2f}/unit k (R2={fit.r_squared:.3f})",
        fit.exponent > 1.2,
    )

    # ------------------------------------------------------ state table
    st = run_state_table(ks=tuple(range(2, 11)))
    note(
        "state-table",
        "3k-2 / k(k+3)/2 formulas match the implementations",
        f"verified for k = 2..10",
        all(bool(r["formulas_verified"]) for r in st.rows),
    )

    # -------------------------------------------------- uniformity gap
    gap = run_uniformity_gap(
        k=4,
        n_values=(48,) if quick else (64, 128, 256),
        trials=trials or (10 if quick else 30),
        seed=seed,
    )
    uni = gap.where(protocol="uniform-k-partition")
    apx = gap.where(protocol="approx-k-partition")
    note(
        "uniformity-gap",
        "Algorithm 1 always lands within spread 1",
        f"max spread {max(int(r['max_spread']) for r in uni.rows)}",
        all(int(r["max_spread"]) <= 1 for r in uni.rows),
    )
    note(
        "uniformity-gap",
        "approximate baseline meets its n/(2k) floor",
        "checked per n",
        all(int(r["worst_min_group"]) >= int(r["guarantee_floor"]) for r in apx.rows),
    )

    # ----------------------------------------------- exact validation
    ev = run_exact_validation(
        points=((2, 5), (3, 5)) if quick else ((2, 6), (3, 5), (3, 7), (4, 6)),
        trials=trials or (600 if quick else 2000),
        seed=seed,
    )
    worst = max(float(r["gap_in_sigmas"]) for r in ev.rows)
    note(
        "exact-validation",
        "simulated means match closed-form expectations",
        f"worst gap {worst:.2f} sigma",
        worst < 5.0,
    )

    return table


def render_report(table: ResultTable) -> str:
    passed = sum(1 for r in table.rows if r["verdict"])
    total = len(table.rows)
    lines = [
        "Reproduction report — paper claims checked programmatically",
        f"({passed}/{total} claims pass; grids: "
        f"{'quick' if table.params.get('quick') else 'full'})",
        "",
    ]
    width = max(len(str(r["claim"])) for r in table.rows) if table.rows else 0
    for r in table.rows:
        mark = "PASS" if r["verdict"] else "FAIL"
        lines.append(
            f"[{mark}] {r['figure']:<14} {str(r['claim']):<{width}}  | {r['measured']}"
        )
    return "\n".join(lines)
