"""Figure 3 — interactions to stability vs population size n.

Paper setting: for k in {4, 6, 8}, sweep n and plot the average (over
100 executions under the uniform scheduler) of the total number of
interactions until the stable configuration is reached.  The paper
highlights a *sawtooth*: the count generally grows with n, but dips
right after each multiple of k — ``n mod k`` matters, because for
``n = c*k + k`` or ``c*k + (k+1)`` the final grouping must be completed
with almost no spare free agents, which dominates the total.

This module reproduces the sweep.  The companion analysis
:func:`sawtooth_score` quantifies the paper's qualitative claim:
within each window ``[c*k + 2, (c+1)*k + 1]`` the mean interaction
count should peak near the top of the window and drop at the next
window's start.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..engine.base import Engine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .ascii_plot import line_plot
from .common import DEFAULT_SEED, point_seed, trial_progress

__all__ = ["run_fig3", "render_fig3", "sawtooth_drops", "QUICK_PARAMS"]

#: Reduced parameters used by CI, benchmarks, and ``--quick``.
QUICK_PARAMS: dict = {
    "ks": (4,),
    "n_values": tuple(range(8, 41, 4)),
    "trials": 8,
}


def run_fig3(
    *,
    ks: Sequence[int] = (4, 6, 8),
    n_values: Sequence[int] | None = None,
    n_max: int = 120,
    trials: int = 100,
    seed: int = DEFAULT_SEED,
    engine: Engine | str | None = None,
    progress=None,
) -> ResultTable:
    """Sweep n for each k and record interaction statistics.

    ``n_values=None`` uses every n from ``k + 2`` to ``n_max`` (step 1,
    per-k), which is what exposes the mod-k sawtooth.
    """
    table = ResultTable(
        name="fig3_vary_n",
        params={
            "ks": list(ks),
            "n_values": list(n_values) if n_values is not None else None,
            "n_max": n_max,
            "trials": trials,
            "seed": seed,
        },
    )
    for k in ks:
        protocol = uniform_k_partition(k)
        ns = n_values if n_values is not None else range(k + 2, n_max + 1)
        for n in ns:
            if n < 3:
                continue
            ts = run_trials(
                protocol,
                n,
                trials=trials,
                engine=engine,
                seed=point_seed(seed, "fig3", k, n),
                progress=trial_progress(progress, f"fig3 k={k} n={n}"),
            )
            table.append(
                k=k,
                n=n,
                n_mod_k=n % k,
                trials=ts.trials,
                mean_interactions=ts.mean_interactions,
                std_interactions=ts.std_interactions,
                sem_interactions=ts.sem_interactions,
                min_interactions=int(ts.interactions.min()),
                max_interactions=int(ts.interactions.max()),
                mean_effective=float(ts.effective_interactions.mean()),
            )
            if progress is not None:
                progress(f"fig3 k={k} n={n}: mean={ts.mean_interactions:.0f}")
    return table


def render_fig3(table: ResultTable) -> str:
    """Terminal rendering: one marker series per k."""
    series = {}
    for k in sorted({row["k"] for row in table.rows}):
        sub = table.where(k=k)
        series[f"k={k}"] = (sub.column("n"), sub.column("mean_interactions"))
    return line_plot(
        series,
        title="Figure 3: interactions to stability vs population size n",
        xlabel="n (population size)",
        ylabel="mean interactions",
    )


def sawtooth_drops(table: ResultTable, k: int) -> list[tuple[int, float, float]]:
    """Locate the mod-k dips: every ``n`` where the mean DROPS at ``n+1``.

    The paper observes that "the number of interactions sometimes
    decreases when n increases" and that "such a phenomenon is repeated
    with a period of a length of k".  Returns
    ``(n, mean_at_n, mean_at_n_plus_1)`` for each drop.

    Reproduction note: in our runs the peak of each window sits at
    ``n = c*k + 2`` — with exactly two leftover free agents, the
    remainder phase requires those two *specific* agents to meet
    (probability 1/C(n,2) per interaction, so ~n^2 interactions),
    which dominates the total; the drop lands at ``n = c*k + 3``.
    The periodicity (drops recurring every k) is the paper's claim;
    :func:`sawtooth_period` checks it.
    """
    sub = table.where(k=k)
    by_n = {int(row["n"]): float(row["mean_interactions"]) for row in sub.rows}
    out = []
    for n, mean in sorted(by_n.items()):
        if (n + 1) in by_n and by_n[n + 1] < mean:
            out.append((n, mean, by_n[n + 1]))
    return out


def sawtooth_period(table: ResultTable, k: int) -> int | None:
    """Most common residue ``n mod k`` among the drops (None if no drop).

    A clean sawtooth has all drops at one residue class, i.e. period k.
    """
    drops = sawtooth_drops(table, k)
    if not drops:
        return None
    residues = [n % k for n, _, _ in drops]
    return max(set(residues), key=residues.count)
