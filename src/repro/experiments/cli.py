"""Command-line entry point: ``repro-experiments``.

Regenerates every figure and table of the paper's evaluation::

    repro-experiments fig3              # full-scale Figure 3 sweep
    repro-experiments fig6 --quick      # smoke-scale Figure 6
    repro-experiments all --quick --out results/
    repro-experiments campaign run --quick   # resumable cached sweeps
    repro-experiments fig3 --quick --trace trace.jsonl --metrics
    repro-experiments obs summarize trace.jsonl   # render a trace
    repro-experiments conform diff              # cross-engine lockstep diff
    repro-experiments fig3 --quick --conform    # invariant-check every trial

Full-scale runs use the paper's parameters (100 trials, n up to 960,
k up to 10) and take minutes; ``--quick`` runs the same code on
reduced grids in seconds.  Outputs: a terminal rendering, plus
``<name>.csv`` / ``<name>.json`` / ``<name>.txt`` when ``--out`` is
given.

Sweeps are **incremental**: with ``--out`` (or an explicit ``--cache``
path) every ``run_trials`` point is memoized in a campaign database,
so a re-run — after an interruption, or after ``campaign run``
computed the same grid — only simulates the missing points.  Pass
``--no-cache`` to force recomputation.  The ``campaign`` subcommand
(submit/run/status/gc/serve) manages long sweeps as durable job
queues; see ``docs/campaign.md``.

Observability: ``--trace PATH`` appends one JSONL record per trial set
and per trial (plus a provenance header) while the sweep runs, and
``--metrics`` prints the in-process telemetry snapshot at the end.
The ``obs`` subcommand (summarize/validate) inspects trace files; see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from ..io.results import ResultTable
from . import (
    distribution,
    lowerbound,
    report,
    engine_ablation,
    exact_validation,
    fig3_vary_n,
    fig4_grouping,
    fig5_scaling_n,
    fig6_scaling_k,
    graph_density,
    scaling_law,
    state_table,
    trajectory,
    uniformity_gap,
)
from .common import DEFAULT_SEED, ProgressPrinter, write_outputs

__all__ = ["main", "EXPERIMENTS", "describe_protocol"]

#: name -> (run function, render function, quick params, description)
EXPERIMENTS: dict[str, tuple[Callable[..., ResultTable], Callable, dict, str]] = {
    "fig3": (
        fig3_vary_n.run_fig3,
        fig3_vary_n.render_fig3,
        fig3_vary_n.QUICK_PARAMS,
        "interactions vs n for k in {4,6,8} (sawtooth in n mod k)",
    ),
    "fig4": (
        fig4_grouping.run_fig4,
        fig4_grouping.render_fig4,
        fig4_grouping.QUICK_PARAMS,
        "per-grouping decomposition NI'_i (stacked)",
    ),
    "fig5": (
        fig5_scaling_n.run_fig5,
        fig5_scaling_n.render_fig5,
        fig5_scaling_n.QUICK_PARAMS,
        "interactions vs n = 120*n' for k in {3,4,5,6}",
    ),
    "fig6": (
        fig6_scaling_k.run_fig6,
        fig6_scaling_k.render_fig6,
        fig6_scaling_k.QUICK_PARAMS,
        "interactions vs k at n = 960 (log scale, exponential in k)",
    ),
    "state-table": (
        state_table.run_state_table,
        state_table.render_state_table,
        state_table.QUICK_PARAMS,
        "state-complexity comparison (3k-2 vs k(k+3)/2 vs lower bound)",
    ),
    "uniformity-gap": (
        uniformity_gap.run_uniformity_gap,
        uniformity_gap.render_uniformity_gap,
        uniformity_gap.QUICK_PARAMS,
        "partition quality: Algorithm 1 vs approximate baseline",
    ),
    "engine-ablation": (
        engine_ablation.run_engine_ablation,
        engine_ablation.render_engine_ablation,
        engine_ablation.QUICK_PARAMS,
        "agent vs batch vs count engine performance",
    ),
    "exact-validation": (
        exact_validation.run_exact_validation,
        exact_validation.render_exact_validation,
        exact_validation.QUICK_PARAMS,
        "closed-form expected interactions vs simulation (small n, k)",
    ),
    "trajectory": (
        trajectory.run_trajectory,
        trajectory.render_trajectory,
        trajectory.QUICK_PARAMS,
        "group-size trajectories along one execution (extension)",
    ),
    "distribution": (
        distribution.run_distribution,
        distribution.render_distribution,
        distribution.QUICK_PARAMS,
        "stabilization-time distribution: quantiles and tail (extension)",
    ),
    "graph-density": (
        graph_density.run_graph_density,
        graph_density.render_graph_density,
        graph_density.QUICK_PARAMS,
        "graph bipartition: stabilization vs graph density (extension)",
    ),
    "scaling-law": (
        scaling_law.run_scaling_law,
        scaling_law.render_scaling_law,
        scaling_law.QUICK_PARAMS,
        "convergence scaling laws a*n^b*ln(n)^c with bootstrap CIs (extension)",
    ),
    "report": (
        report.run_report,
        report.render_report,
        report.QUICK_PARAMS,
        "consolidated claim-by-claim reproduction verdicts",
    ),
    "lowerbound": (
        lowerbound.run_lowerbound,
        lowerbound.render_lowerbound,
        lowerbound.QUICK_PARAMS,
        "mechanized 4-state lower bound for symmetric bipartition (extension)",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'A Population Protocol for Uniform "
            "k-Partition under Global Fairness' (Yasumi et al.)"
        ),
    )
    choices = list(EXPERIMENTS) + ["all", "describe"]
    parser.add_argument(
        "experiment",
        choices=choices,
        help=(
            "which figure/table to regenerate ('all' runs everything; "
            "'describe' prints a protocol's states and rules; "
            "'campaign' manages resumable job queues; "
            "'obs' inspects JSONL traces; "
            "'conform' runs differential/invariant checks; "
            "'results' inspects/converts result tables — "
            "see 'repro-experiments campaign --help' / "
            "'repro-experiments obs --help' / "
            "'repro-experiments conform --help' / "
            "'repro-experiments results --help')"
        ),
    )
    parser.add_argument(
        "--protocol",
        default=None,
        help="for 'describe': a protocol name from the registry",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "for 'describe': protocol parameter, e.g. --param k=4 or "
            "--param ratio=1,2,3 (repeatable)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced parameter grid (seconds instead of minutes)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the number of trials per sweep point",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"master seed (default {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help=(
            "simulation engine for sweep experiments (e.g. 'count', "
            "'ensemble'); defaults to each experiment's own choice"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for CSV/JSON/TXT outputs (default: print only)",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress progress lines on stderr",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DB",
        help=(
            "campaign database memoizing every sweep point (default: "
            "<out>/campaign.db when --out is given, else no cache)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="force recomputation: neither read nor write the point cache",
    )
    import os

    parser.add_argument(
        "--trace",
        default=os.environ.get("REPRO_TRACE") or None,
        metavar="PATH",
        help=(
            "append a JSONL trace (provenance header + one record per "
            "trial set and per trial); inspect with 'obs summarize' "
            "(env: REPRO_TRACE)"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        default=bool(os.environ.get("REPRO_METRICS")),
        help=(
            "collect run metrics and print the telemetry snapshot at "
            "the end (env: REPRO_METRICS=1)"
        ),
    )
    parser.add_argument(
        "--conform",
        action="store_true",
        default=bool(os.environ.get("REPRO_CONFORM")),
        help=(
            "debug: check every trial's final configuration against the "
            "protocol's invariant pack and abort on a violation "
            "(env: REPRO_CONFORM=1; see docs/conformance.md)"
        ),
    )
    return parser


def run_experiment(
    name: str,
    *,
    quick: bool = False,
    trials: int | None = None,
    seed: int = DEFAULT_SEED,
    engine: str | None = None,
    out: str | None = None,
    progress_enabled: bool = True,
) -> ResultTable:
    """Run one experiment by name; returns (and optionally writes) the table."""
    run, render, quick_params, _ = EXPERIMENTS[name]
    params: dict = dict(quick_params) if quick else {}
    if trials is not None and "trials" in _signature_params(run):
        params["trials"] = trials
    if "seed" in _signature_params(run):
        params["seed"] = seed
    if engine is not None and "engine" in _signature_params(run):
        params["engine"] = engine
    progress = ProgressPrinter(enabled=progress_enabled)
    if "progress" in _signature_params(run):
        params["progress"] = progress
    table = run(**params)
    write_outputs(table, out, render=render)
    return table


def _signature_params(fn: Callable) -> set[str]:
    import inspect

    return set(inspect.signature(fn).parameters)


def _parse_param(text: str) -> tuple[str, object]:
    key, _, raw = text.partition("=")
    if not key or not raw:
        raise SystemExit(f"--param expects KEY=VALUE, got {text!r}")
    if "," in raw:
        return key, tuple(int(v) for v in raw.split(","))
    try:
        return key, int(raw)
    except ValueError:
        return key, raw


def describe_protocol(name: str, params: list[str]) -> str:
    """Render a registry protocol's structure (the 'describe' command)."""
    from ..protocols.registry import build_protocol

    kwargs = dict(_parse_param(p) for p in params)
    return build_protocol(name, **kwargs).describe()


def _resolve_cache(args: "argparse.Namespace"):
    """The trial cache implied by ``--cache`` / ``--out`` / ``--no-cache``.

    Returns ``(cache, store)`` — both ``None`` when caching is off.
    """
    if args.no_cache:
        return None, None
    path = args.cache
    if path is None and args.out is not None:
        from pathlib import Path

        path = str(Path(args.out) / "campaign.db")
    if path is None:
        return None, None
    from ..campaign.store import CampaignStore

    store = CampaignStore(path)
    return store.trial_cache(), store


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        from ..campaign.cli import campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "obs":
        from ..obs.cli import obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "conform":
        from ..conform.cli import conform_main

        return conform_main(argv[1:])
    if argv and argv[0] == "session":
        from ..sessiond.cli import session_main

        return session_main(argv[1:])
    if argv and argv[0] == "results":
        from ..io.results_cli import results_main

        return results_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "describe":
        if not args.protocol:
            raise SystemExit("describe requires --protocol NAME")
        print(describe_protocol(args.protocol, args.param))
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    cache, store = _resolve_cache(args)
    from contextlib import ExitStack

    from ..engine.runner import use_trial_cache

    telemetry = None
    conformance = None
    try:
        with ExitStack() as stack:
            stack.enter_context(use_trial_cache(cache))
            if args.conform:
                from ..conform.runtime import use_conformance

                conformance = stack.enter_context(use_conformance(strict=True))
            if args.metrics:
                from ..obs import Telemetry, use_telemetry

                telemetry = Telemetry()
                stack.enter_context(use_telemetry(telemetry))
            if args.trace is not None:
                from ..obs import TraceWriter, use_trace_writer

                writer = stack.enter_context(
                    TraceWriter(args.trace, meta={"argv": list(argv)})
                )
                stack.enter_context(use_trace_writer(writer))
            for name in names:
                _, render, _, description = EXPERIMENTS[name]
                print(f"== {name}: {description} ==")
                table = run_experiment(
                    name,
                    quick=args.quick,
                    trials=args.trials,
                    seed=args.seed,
                    engine=args.engine,
                    out=args.out,
                    progress_enabled=not args.no_progress,
                )
                print(render(table))
                print()
        if telemetry is not None:
            from ..obs.summary import render_metrics

            print(render_metrics(telemetry.snapshot()))
        if args.trace is not None:
            print(f"[trace] wrote {args.trace}")
        if conformance is not None:
            print(
                f"[conform] {conformance.results_checked} final "
                "configuration(s) checked, no violations"
            )
        if cache is not None and (cache.hits or cache.misses):
            total = cache.hits + cache.misses
            print(
                f"[point cache] {cache.hits}/{total} hits "
                f"({100.0 * cache.hits / total:.0f}%), "
                f"{cache.misses} point(s) simulated"
            )
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
