"""Figure 5 — scaling with n at n mod k = 0.

Paper setting: to remove the mod-k effect, simulate only multiples of
120 (``n = 120 * n'`` for n' = 1..8) for k in {3, 4, 5, 6} and plot the
mean interactions over 100 trials.  Conclusion: growth in n is "more
than linear but less than exponential".

This module adds the quantitative backing: a power-law fit per k (the
measured exponents land well above 1) and an explicit check that the
semi-log fit is worse than the log-log fit (i.e. the growth is closer
to polynomial than exponential), matching the paper's reading.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..analysis.convergence import fit_exponential, fit_power_law
from ..engine.base import Engine
from ..engine.runner import run_trials
from ..io.results import ResultTable
from ..protocols.kpartition import uniform_k_partition
from .ascii_plot import line_plot
from .common import DEFAULT_SEED, point_seed, trial_progress

__all__ = ["run_fig5", "render_fig5", "scaling_fits", "QUICK_PARAMS"]

QUICK_PARAMS: dict = {
    "ks": (3, 4),
    "n_units": (1, 2, 3),
    "base_n": 24,
    "trials": 6,
}


def run_fig5(
    *,
    ks: Sequence[int] = (3, 4, 5, 6),
    n_units: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    base_n: int = 120,
    trials: int = 100,
    seed: int = DEFAULT_SEED,
    engine: Engine | str | None = None,
    progress=None,
) -> ResultTable:
    """Sweep ``n = base_n * n'`` for each k (all k divide ``base_n``)."""
    for k in ks:
        if base_n % k:
            raise ValueError(
                f"base_n = {base_n} must be a multiple of every k; k={k} is not a divisor"
            )
    table = ResultTable(
        name="fig5_scaling_n",
        params={
            "ks": list(ks),
            "n_units": list(n_units),
            "base_n": base_n,
            "trials": trials,
            "seed": seed,
        },
    )
    for k in ks:
        protocol = uniform_k_partition(k)
        for unit in n_units:
            n = base_n * unit
            ts = run_trials(
                protocol,
                n,
                trials=trials,
                engine=engine,
                seed=point_seed(seed, "fig5", k, n),
                progress=trial_progress(progress, f"fig5 k={k} n={n}"),
            )
            table.append(
                k=k,
                n=n,
                trials=ts.trials,
                mean_interactions=ts.mean_interactions,
                std_interactions=ts.std_interactions,
                sem_interactions=ts.sem_interactions,
                mean_effective=float(ts.effective_interactions.mean()),
            )
            if progress is not None:
                progress(f"fig5 k={k} n={n}: mean={ts.mean_interactions:.0f}")
    return table


def render_fig5(table: ResultTable) -> str:
    series = {}
    for k in sorted({row["k"] for row in table.rows}):
        sub = table.where(k=k)
        series[f"k={k}"] = (sub.column("n"), sub.column("mean_interactions"))
    plot = line_plot(
        series,
        title="Figure 5: interactions vs n (n mod k = 0)",
        xlabel="n (population size)",
        ylabel="mean interactions",
    )
    fits = scaling_fits(table)
    lines = [plot, "", "growth fits (y = a * n^b vs y = a * b^n):"]
    for k, (power, expo) in sorted(fits.items()):
        verdict = "superlinear, subexponential" if (
            power.exponent > 1.0 and power.r_squared >= expo.r_squared
        ) else "inconclusive"
        lines.append(
            f"  k={k}: power b={power.exponent:.2f} (R2={power.r_squared:.3f})  "
            f"exp b={expo.exponent:.3f}/unit (R2={expo.r_squared:.3f})  -> {verdict}"
        )
    return "\n".join(lines)


def scaling_fits(table: ResultTable):
    """Per-k (power-law fit, exponential fit) of mean interactions vs n."""
    out = {}
    for k in sorted({row["k"] for row in table.rows}):
        sub = table.where(k=k)
        ns = [float(v) for v in sub.column("n")]
        ys = [float(v) for v in sub.column("mean_interactions")]
        if len(ns) >= 2:
            out[int(k)] = (fit_power_law(ns, ys), fit_exponential(ns, ys))
    return out
