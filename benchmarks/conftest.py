"""Benchmark-suite configuration.

Each benchmark regenerates one paper figure/table at reduced scale
(the full-scale sweeps run via ``repro-experiments`` and are recorded
in EXPERIMENTS.md).  Benchmarks double as integration smoke tests:
every benchmark asserts the qualitative shape of its figure before
returning, so a passing ``pytest benchmarks/ --benchmark-only`` also
re-validates the reproduction claims.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Keep benchmark runs short and comparable across machines.
    config.option.benchmark_min_rounds = max(
        getattr(config.option, "benchmark_min_rounds", 5) or 5, 3
    )
