"""Benchmark: Figure 5 — scaling with n at n mod k = 0.

Regenerates a reduced multiples-sweep and asserts superlinear growth
in n (the paper's "more than linearly but less than exponentially").
"""

from __future__ import annotations

from repro.experiments.fig5_scaling_n import run_fig5, scaling_fits


def _sweep():
    return run_fig5(
        ks=(3, 4),
        n_units=(1, 2, 3, 4),
        base_n=24,
        trials=6,
        seed=9,
    )


def test_fig5_scaling(benchmark):
    table = benchmark(_sweep)
    fits = scaling_fits(table)
    for k, (power, expo) in fits.items():
        # Superlinear growth in n...
        assert power.exponent > 1.0, (k, power)
        # ...and the log-log fit explains the data well (i.e. closer to
        # polynomial than to exponential at these scales).
        assert power.r_squared > 0.9, (k, power)
