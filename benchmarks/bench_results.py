"""Benchmark: result storage — columnar shards vs JSON tables.

The columnar backbone exists so million-trial-row campaigns stay
writable and queryable; this benchmark prices its three verbs on a
synthetic campaign table and compares them with the JSON path the
repo used before PR 10:

* **write** — streaming `ShardWriter.append_arrays` vs one
  `write_json` dump,
* **load + scan** — iterating every row back out of each format,
* **aggregate** — grouped mean/var/quantiles: streaming
  `group_reduce` over shards vs the in-memory reference over a
  materialized row list.

Numbers land in ``BENCH_results.json`` at the repository root with the
same provenance block as the other ``BENCH_*.json`` artifacts (git
revision, CPU count, NumPy/Numba versions, active kernel backend).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
from pathlib import Path

import numpy as np

from repro.engine import get_kernels
from repro.io.columnar import ColumnStore, ShardWriter, group_reduce, group_reduce_rows
from repro.io.results import ResultTable

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_results.json"
ROWS = 200_000
SHARD_ROWS = 65_536
SEED = 2026


def _provenance() -> dict:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=RESULT_PATH.parent,
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — provenance is best effort
        rev = "unknown"
    try:
        import numba

        numba_version = numba.__version__
    except Exception:  # noqa: BLE001 — absence is normal
        numba_version = None
    return {
        "git_rev": rev,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "numba": numba_version,
        "kernel_backend": get_kernels().backend,
    }


def _record(point: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[point] = payload
    data["provenance"] = _provenance()
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _synthetic_columns(rows: int) -> dict:
    """Campaign-trial-shaped columns: the scaling-law sink schema."""
    rng = np.random.default_rng(SEED)
    ks = rng.choice([2, 4, 8, 16, 32], size=rows)
    ns = rng.choice([1_000, 10_000, 100_000, 1_000_000], size=rows)
    return {
        "k": ks.astype(np.int64),
        "n": ns.astype(np.int64),
        "trial": np.arange(rows, dtype=np.int64) % 100,
        "interactions": (ns.astype(np.float64) ** 2 * rng.uniform(0.5, 2.0, rows)),
        "effective_interactions": (ns.astype(np.float64) * rng.uniform(1.0, 9.0, rows)),
        "converged": np.ones(rows, dtype=bool),
    }


def _rows_from_columns(columns: dict) -> list[dict]:
    names = list(columns)
    return [
        {name: columns[name][i].item() for name in names}
        for i in range(len(columns[names[0]]))
    ]


def _write_columnar(dest: Path, columns: dict) -> ColumnStore:
    if dest.exists():
        shutil.rmtree(dest)
    with ShardWriter(dest, name="bench", shard_rows=SHARD_ROWS) as writer:
        writer.append_arrays(**columns)
    return writer.close()


def test_write_columnar_vs_json(benchmark, tmp_path):
    """Streaming shard writes vs one JSON dump of the same table."""
    columns = _synthetic_columns(ROWS)
    rows = _rows_from_columns(columns)
    table = ResultTable("bench", rows=rows)

    benchmark.pedantic(
        lambda: _write_columnar(tmp_path / "w.columnar", columns),
        rounds=3,
        iterations=1,
    )
    columnar_s = benchmark.stats.stats.min

    import time

    t0 = time.perf_counter()
    table.write_json(tmp_path / "w.json")
    json_s = time.perf_counter() - t0

    store = ColumnStore(tmp_path / "w.columnar")
    _record(
        f"write_{ROWS}_rows",
        {
            "rows": ROWS,
            "shard_rows": SHARD_ROWS,
            "shards": store.shard_count,
            "columnar_seconds": round(columnar_s, 4),
            "json_seconds": round(json_s, 4),
            "columnar_bytes": store.size_bytes(),
            "json_bytes": (tmp_path / "w.json").stat().st_size,
        },
    )
    assert store.rows == ROWS


def test_load_and_scan(benchmark, tmp_path):
    """Full-table row iteration out of each format."""
    columns = _synthetic_columns(ROWS)
    store = _write_columnar(tmp_path / "r.columnar", columns)
    table = ResultTable("bench", rows=_rows_from_columns(columns))
    json_path = table.write_json(tmp_path / "r.json")

    def scan_columnar():
        count = 0
        for batch in ColumnStore(store.path).scan():
            count += len(batch["k"])
        return count

    benchmark.pedantic(scan_columnar, rounds=3, iterations=1)
    columnar_s = benchmark.stats.stats.min

    import time

    from repro.io import load_table

    t0 = time.perf_counter()
    loaded = len(load_table(json_path))
    json_s = time.perf_counter() - t0

    _record(
        f"scan_{ROWS}_rows",
        {
            "rows": ROWS,
            "columnar_seconds": round(columnar_s, 4),
            "json_seconds": round(json_s, 4),
        },
    )
    assert loaded == ROWS
    assert scan_columnar() == ROWS


def test_group_reduce_streaming_vs_rows(benchmark, tmp_path):
    """Grouped aggregation: out-of-core shards vs materialized rows."""
    columns = _synthetic_columns(ROWS)
    store = _write_columnar(tmp_path / "g.columnar", columns)
    rows = _rows_from_columns(columns)
    kwargs = dict(
        by=["k", "n"],
        values=["interactions", "effective_interactions"],
        quantiles=(0.5, 0.99),
    )

    benchmark.pedantic(lambda: group_reduce(store, **kwargs), rounds=3, iterations=1)
    streaming_s = benchmark.stats.stats.min

    import time

    t0 = time.perf_counter()
    reference = group_reduce_rows(rows, **kwargs)
    rows_s = time.perf_counter() - t0

    _record(
        f"group_reduce_{ROWS}_rows",
        {
            "rows": ROWS,
            "groups": len(reference),
            "streaming_seconds": round(streaming_s, 4),
            "rows_seconds": round(rows_s, 4),
        },
    )
    # The differential guarantee the docs advertise.
    assert group_reduce(store, **kwargs) == reference
