"""Benchmark: campaign service v2 under load (latency, throughput, 429s).

Three load points against a live :class:`AsyncCampaignService`, all
driven by the harness in ``repro.campaign.loadgen``:

* ``closed_loop_1000`` — 1000 concurrent keep-alive clients cycling
  submit/status/result: the acceptance point.  Gates: zero 5xx, zero
  transport errors, and p50/p99 latency on the record.
* ``open_loop_backpressure`` — fixed-rate submissions against a small
  ``queue_limit``: proves saturation surfaces as 429 + ``Retry-After``
  (and still zero 5xx), not as buried queues or dropped connections.
* ``drain_throughput`` — end-to-end jobs/second through the worker
  pool for a burst of tiny jobs.

Results go to ``BENCH_campaign.json`` at the repository root with the
same provenance block as ``BENCH_ensemble.json`` (git revision, CPU
count, NumPy/Numba versions, active kernel backend), so numbers from
different machines are never silently comparable.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.campaign import AsyncCampaignService, make_specs
from repro.campaign.loadgen import run_closed_loop, run_open_loop
from repro.engine import get_kernels

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"

#: The acceptance concurrency: this many clients hold connections with
#: requests in flight simultaneously.
CLIENTS = 1000


def _provenance() -> dict:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=RESULT_PATH.parent,
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — provenance is best effort
        rev = "unknown"
    try:
        import numba

        numba_version = numba.__version__
    except Exception:  # noqa: BLE001 — absence is normal
        numba_version = None
    return {
        "git_rev": rev,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "numba": numba_version,
        "kernel_backend": get_kernels().backend,
    }


def _record(point: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[point] = payload
    data["provenance"] = _provenance()
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_closed_loop_1000_clients(tmp_path):
    """1000 concurrent submit/status/result clients, zero 5xx."""
    service = AsyncCampaignService(
        tmp_path / "bench.db", workers=1, queue_limit=100_000,
        poll_interval=0.02,
    ).start()
    try:
        report = run_closed_loop(
            service.url,
            clients=CLIENTS,
            duration=6.0,
            specs=make_specs(2 * CLIENTS, seed0=1),
            tenant="bench",
        )
    finally:
        service.stop()
    print(report.summary())
    assert report.server_errors == 0, report.to_record()
    assert report.transport_errors == 0, report.to_record()
    assert report.max_in_flight >= CLIENTS * 0.9, report.max_in_flight
    assert report.requests > CLIENTS, report.requests
    _record("closed_loop_1000", report.to_record())


def test_open_loop_backpressure(tmp_path):
    """Saturating a bounded queue yields 429s, never 5xx."""
    service = AsyncCampaignService(
        tmp_path / "bench.db", workers=1, queue_limit=32,
        poll_interval=0.02,
    ).start()
    try:
        report = run_open_loop(
            service.url,
            rate=400.0,
            duration=4.0,
            specs=make_specs(2000, seed0=50_000, n=64, trials=2),
            tenant="bench",
            status_every=8,
        )
    finally:
        service.stop()
    print(report.summary())
    assert report.server_errors == 0, report.to_record()
    assert report.rejected > 0, report.to_record()
    assert report.by_code.get(200, 0) > 0, report.to_record()
    _record("open_loop_backpressure", report.to_record())


def test_drain_throughput(tmp_path):
    """Jobs/second end to end through the v2 worker pool."""
    jobs = 200
    service = AsyncCampaignService(
        tmp_path / "bench.db", workers=2, queue_limit=100_000,
        poll_interval=0.01,
    ).start()
    try:
        import urllib.request

        def http(path, body=None):
            data = None if body is None else json.dumps(body).encode()
            req = urllib.request.Request(
                service.url + path, data=data,
                headers={"Content-Type": "application/json"} if data else {},
            )
            with urllib.request.urlopen(req, timeout=30) as resp:
                return json.loads(resp.read())

        t0 = time.perf_counter()
        http("/submit", {"specs": make_specs(jobs, seed0=90_000), "tenant": "bench"})
        while True:
            counts = http("/status?tenant=bench")["jobs"]
            if counts["done"] + counts["failed"] >= jobs:
                break
            time.sleep(0.05)
        elapsed = time.perf_counter() - t0
    finally:
        service.stop()
    assert counts["failed"] == 0, counts
    payload = {
        "jobs": jobs,
        "workers": 2,
        "seconds": round(elapsed, 3),
        "jobs_per_second": round(jobs / elapsed, 1),
    }
    print(payload)
    assert payload["jobs_per_second"] > 0
    _record("drain_throughput", payload)
