"""Benchmark: ensemble engine vs serial count-engine trials.

The ensemble engine's reason to exist is the paper's evaluation shape:
100 independent replicates per parameter point.  This benchmark times
``run_trials``-style workloads both ways — serial scalar jump chain
per trial vs one vectorized batch — at two working points:

* Figure 3's k = 3, n = 300 (the acceptance point: the batch must be
  several times faster than the serial loop), and
* Figure 6's k = 6, n = 960 (the heavy regime, where the serial
  baseline is extrapolated from a few trials to keep the suite quick).

Besides the pytest-benchmark stats, the measured throughput is written
to ``BENCH_ensemble.json`` at the repository root so the speedup is
recorded alongside the code that produced it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.rng import spawn_seed_sequences
from repro.engine import CountBasedEngine, EnsembleEngine
from repro.protocols import uniform_k_partition

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ensemble.json"
TRIALS = 100
#: Conservative CI floor; the committed BENCH_ensemble.json records the
#: actual measured speedup (>= 5x on the reference machine).
MIN_SPEEDUP = 2.5


def _serial_seconds_per_trial(protocol, n, *, seed, trials) -> float:
    engine = CountBasedEngine()
    seeds = spawn_seed_sequences(seed, trials)
    start = time.perf_counter()
    for s in seeds:
        result = engine.run(protocol, n, seed=s)
        assert result.converged
    return (time.perf_counter() - start) / trials


def _record(point: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[point] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize(
    ("k", "n", "serial_trials"),
    [(3, 300, TRIALS), (6, 960, 5)],
    ids=["fig3-k3-n300", "fig6-k6-n960"],
)
def test_ensemble_vs_serial(benchmark, k, n, serial_trials):
    protocol = uniform_k_partition(k)
    protocol.compiled  # warm the compile cache outside the timings
    seeds = spawn_seed_sequences(2026, TRIALS)
    engine = EnsembleEngine()

    def run_batch():
        return engine.run_batch(protocol, n, seeds=seeds)

    results = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    assert len(results) == TRIALS
    assert all(r.converged for r in results)

    ensemble_per_trial = benchmark.stats.stats.min / TRIALS
    serial_per_trial = _serial_seconds_per_trial(
        protocol, n, seed=2026, trials=serial_trials
    )
    speedup = serial_per_trial / ensemble_per_trial
    _record(
        f"k{k}_n{n}",
        {
            "k": k,
            "n": n,
            "trials": TRIALS,
            "serial_trials_measured": serial_trials,
            "serial_seconds_per_trial": round(serial_per_trial, 6),
            "ensemble_seconds_per_trial": round(ensemble_per_trial, 6),
            "speedup": round(speedup, 2),
        },
    )
    if k == 3:  # the acceptance point
        assert speedup >= MIN_SPEEDUP
