"""Benchmark: ensemble engine, kernel tiers, and parallel sharding.

The ensemble engine's reason to exist is the paper's evaluation shape:
100 independent replicates per parameter point.  This benchmark times
``run_trials``-style workloads both ways — serial scalar jump chain
per trial vs one vectorized batch — at two working points:

* Figure 3's k = 3, n = 300 (the acceptance point: the batch must be
  several times faster than the serial loop), and
* Figure 6's k = 6, n = 960 (the heavy regime, where the serial
  baseline is extrapolated from a few trials to keep the suite quick).

It also times the compiled kernel tier (``count-jit`` vs ``count`` —
the floor is 2x at the heavy point whenever a native backend is
available) and the sharded parallel ensemble tier at several worker
counts (on single-core CI boxes the scaling curve is honest and flat;
the numbers are recorded either way).

Besides the pytest-benchmark stats, the measured throughput is written
to ``BENCH_ensemble.json`` at the repository root — together with the
provenance (git revision, CPU count, NumPy/Numba versions, active
kernel backend) of the machine that produced it.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.rng import spawn_seed_sequences
from repro.engine import (
    CountBasedEngine,
    EnsembleEngine,
    JitBatchEngine,
    JitCountEngine,
    ParallelEnsembleEngine,
    get_kernels,
)
from repro.protocols import uniform_k_partition

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ensemble.json"
TRIALS = 100
#: Conservative CI floor; the committed BENCH_ensemble.json records the
#: actual measured speedup (>= 5x on the reference machine).
MIN_SPEEDUP = 2.5
#: Acceptance floor for the compiled jump chain over the Python tier at
#: the heavy point, asserted only when a native backend is active
#: (measured >= 30x with the C backend on the reference machine).
MIN_KERNEL_SPEEDUP = 2.0


def _provenance() -> dict:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=RESULT_PATH.parent,
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — provenance is best effort
        rev = "unknown"
    try:
        import numba

        numba_version = numba.__version__
    except Exception:  # noqa: BLE001 — absence is normal
        numba_version = None
    return {
        "git_rev": rev,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "numba": numba_version,
        "kernel_backend": get_kernels().backend,
    }


def _serial_seconds_per_trial(protocol, n, *, seed, trials) -> float:
    engine = CountBasedEngine()
    seeds = spawn_seed_sequences(seed, trials)
    start = time.perf_counter()
    for s in seeds:
        result = engine.run(protocol, n, seed=s)
        assert result.converged
    return (time.perf_counter() - start) / trials


def _record(point: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[point] = payload
    data["provenance"] = _provenance()
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize(
    ("k", "n", "serial_trials"),
    [(3, 300, TRIALS), (6, 960, 5)],
    ids=["fig3-k3-n300", "fig6-k6-n960"],
)
def test_ensemble_vs_serial(benchmark, k, n, serial_trials):
    protocol = uniform_k_partition(k)
    protocol.compiled  # warm the compile cache outside the timings
    seeds = spawn_seed_sequences(2026, TRIALS)
    engine = EnsembleEngine()

    def run_batch():
        return engine.run_batch(protocol, n, seeds=seeds)

    results = benchmark.pedantic(run_batch, rounds=3, iterations=1)
    assert len(results) == TRIALS
    assert all(r.converged for r in results)

    ensemble_per_trial = benchmark.stats.stats.min / TRIALS
    serial_per_trial = _serial_seconds_per_trial(
        protocol, n, seed=2026, trials=serial_trials
    )
    speedup = serial_per_trial / ensemble_per_trial
    _record(
        f"k{k}_n{n}",
        {
            "k": k,
            "n": n,
            "trials": TRIALS,
            "serial_trials_measured": serial_trials,
            "serial_seconds_per_trial": round(serial_per_trial, 6),
            "ensemble_seconds_per_trial": round(ensemble_per_trial, 6),
            "speedup": round(speedup, 2),
        },
    )
    if k == 3:  # the acceptance point
        assert speedup >= MIN_SPEEDUP


def _seconds_per_trial(engine, protocol, n, *, seed, trials) -> float:
    seeds = spawn_seed_sequences(seed, trials)
    engine.run(protocol, n, seed=seeds[0])  # warm caches / kernel build
    start = time.perf_counter()
    for s in seeds:
        result = engine.run(protocol, n, seed=s)
        assert result.converged
    return (time.perf_counter() - start) / trials


@pytest.mark.parametrize(
    ("k", "n", "trials"),
    [(3, 300, 20), (6, 960, 5)],
    ids=["fig3-k3-n300", "fig6-k6-n960"],
)
def test_kernel_tier_vs_count(k, n, trials):
    """Compiled jump chain (``count-jit``) against the Python tier."""
    protocol = uniform_k_partition(k)
    protocol.compiled
    kernels = get_kernels()
    python_per_trial = _seconds_per_trial(
        CountBasedEngine(), protocol, n, seed=2026, trials=trials
    )
    jit_per_trial = _seconds_per_trial(
        JitCountEngine(), protocol, n, seed=2026, trials=trials
    )
    speedup = python_per_trial / jit_per_trial
    _record(
        f"kernel_k{k}_n{n}",
        {
            "k": k,
            "n": n,
            "trials": trials,
            "backend": kernels.backend,
            "compile_seconds": round(kernels.compile_seconds, 3),
            "count_seconds_per_trial": round(python_per_trial, 6),
            "count_jit_seconds_per_trial": round(jit_per_trial, 6),
            "speedup": round(speedup, 2),
        },
    )
    if k == 6 and kernels.native:  # the acceptance point for the kernel tier
        assert speedup >= MIN_KERNEL_SPEEDUP


def test_batch_kernel_tier(k=3, n=120):
    """Compiled pair-draw/apply loop (``batch-jit``) against ``batch``."""
    from repro.engine import BatchEngine

    protocol = uniform_k_partition(k)
    protocol.compiled
    kernels = get_kernels()
    budget = 2_000_000
    seeds = spawn_seed_sequences(2026, 3)
    timings = {}
    for engine in (BatchEngine(), JitBatchEngine()):
        engine.run(protocol, n, seed=seeds[0], max_interactions=budget)
        start = time.perf_counter()
        for s in seeds:
            engine.run(protocol, n, seed=s, max_interactions=budget)
        timings[engine.name] = (time.perf_counter() - start) / len(seeds)
    _record(
        f"batch_kernel_k{k}_n{n}",
        {
            "k": k,
            "n": n,
            "backend": kernels.backend,
            "batch_seconds_per_trial": round(timings["batch"], 6),
            "batch_jit_seconds_per_trial": round(timings["batch-jit"], 6),
            "speedup": round(timings["batch"] / timings["batch-jit"], 2),
        },
    )


def test_parallel_ensemble_scaling(k=3, n=300):
    """Sharded parallel batches at increasing worker counts.

    On a single-core machine the curve is flat — the numbers are
    recorded regardless so the scaling behaviour of the box that built
    BENCH_ensemble.json is on record.
    """
    protocol = uniform_k_partition(k)
    protocol.compiled
    seeds = spawn_seed_sequences(2026, TRIALS)
    cpus = os.cpu_count() or 1
    worker_counts = sorted({1, min(2, cpus), cpus})
    scaling = {}
    baseline = None
    for workers in worker_counts:
        engine = ParallelEnsembleEngine(shard_size=25, workers=workers)
        engine.run_batch(protocol, n, seeds=seeds[:25])  # warm forks/caches
        start = time.perf_counter()
        results = engine.run_batch(protocol, n, seeds=seeds)
        elapsed = time.perf_counter() - start
        assert len(results) == TRIALS
        if baseline is None:
            baseline = elapsed
        scaling[str(workers)] = {
            "seconds": round(elapsed, 4),
            "speedup_vs_1_worker": round(baseline / elapsed, 2),
        }
    _record(
        f"parallel_k{k}_n{n}",
        {
            "k": k,
            "n": n,
            "trials": TRIALS,
            "shard_size": 25,
            "cpu_count": cpus,
            "workers": scaling,
        },
    )
