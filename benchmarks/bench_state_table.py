"""Benchmark: the state-complexity table (Table S).

Builds every protocol for k = 2..12 and cross-checks the paper's
formulas against the implementations' actual state counts.
"""

from __future__ import annotations

from repro.experiments.state_table import run_state_table


def _build():
    return run_state_table(ks=tuple(range(2, 13)))


def test_state_table(benchmark):
    table = benchmark(_build)
    assert len(table) == 11
    assert all(row["formulas_verified"] for row in table.rows)
    # The headline: 3k-2 stays below k(k+3)/2 from k = 4 on.
    for row in table.rows:
        if row["k"] >= 4:
            assert row["proposed_3k_minus_2"] < row["approx_k_k3_over_2"]
