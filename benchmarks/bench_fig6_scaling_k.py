"""Benchmark: Figure 6 — scaling with the number of groups k.

Regenerates a reduced fixed-n sweep over k and asserts the paper's
exponential-growth claim via the semi-log fit.
"""

from __future__ import annotations

from repro.experiments.fig6_scaling_k import exponential_fit, run_fig6


def _sweep():
    return run_fig6(
        n=120,
        ks=(3, 4, 5, 6),
        trials=6,
        seed=10,
    )


def test_fig6_scaling(benchmark):
    table = benchmark(_sweep)
    means = [row["mean_interactions"] for row in table.rows]
    assert means[-1] > 2 * means[0]
    fit = exponential_fit(table)
    assert fit.exponent > 1.2  # clear per-unit-k growth factor
