"""Benchmark: Figure 3 — interactions vs population size n.

Regenerates a reduced Figure 3 sweep per round and asserts its shape:
interaction counts grow with n, and the mod-k sawtooth is present at
the window boundary.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig3_vary_n import run_fig3


def _sweep():
    return run_fig3(
        ks=(4,),
        n_values=tuple(range(8, 29, 2)),
        trials=6,
        seed=7,
    )


def test_fig3_sweep(benchmark):
    table = benchmark(_sweep)
    sub = table.where(k=4)
    ns = np.array(sub.column("n"), dtype=float)
    means = np.array(sub.column("mean_interactions"), dtype=float)
    assert len(table) == 11
    # Shape check: the largest-n mean dominates the smallest-n mean.
    assert means[np.argmax(ns)] > 2 * means[np.argmin(ns)]
    assert (means > 0).all()
