"""Benchmark: the three engines on the same workload (ablation).

Measures raw engine throughput on a fixed (k, n) instance.  This is
the quantitative backing for DESIGN.md's claim that the count-based
engine's null skipping is what makes the paper's Figure 6 regime
tractable: the count engine's time per run shrinks relative to the
agent engines as n grows (the effective fraction drops).
"""

from __future__ import annotations

import pytest

from repro.engine import AgentBasedEngine, BatchEngine, CountBasedEngine, HybridEngine
from repro.protocols import uniform_k_partition

PROTOCOL = uniform_k_partition(4)
N = 240


@pytest.mark.parametrize(
    "engine",
    [AgentBasedEngine(), BatchEngine(), CountBasedEngine(), HybridEngine()],
    ids=["agent", "batch", "count", "hybrid"],
)
def test_engine_throughput(benchmark, engine):
    # Consume a seed per round so rounds are i.i.d. executions.
    state = {"seed": 0}

    def run_once():
        state["seed"] += 1
        return engine.run(PROTOCOL, N, seed=state["seed"])

    result = benchmark(run_once)
    assert result.converged
    assert result.group_sizes.tolist() == [60, 60, 60, 60]


def test_count_engine_large_instance(benchmark):
    """The Figure 6 working point: n = 960, k = 6 in a single run."""
    proto = uniform_k_partition(6)
    state = {"seed": 100}

    def run_once():
        state["seed"] += 1
        return CountBasedEngine().run(proto, 960, seed=state["seed"])

    result = benchmark(run_once)
    assert result.converged
    # Null skipping is doing the lifting: most interactions are skipped.
    assert result.effective_interactions < result.interactions / 10
