"""Benchmark: sessiond snapshot/restore latency and store growth.

The session service's cost model has two axes:

* the per-checkpoint price — pickling a ``SessionState``, content-
  addressing it, and writing it through SQLite (and the symmetric
  restore path back into a live engine session), and
* the store-size curve as the checkpoint interval shrinks — denser
  checkpoints buy finer-grained time travel at the price of more
  rows, partially refunded by content-addressed blob dedup and GC.

Both are measured on the paper's k = 3 protocol and written to
``BENCH_sessiond.json`` at the repository root with the same
provenance block as ``BENCH_ensemble.json`` (git revision, CPU count,
NumPy/Numba versions, active kernel backend), so numbers from
different machines are never silently comparable.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import get_kernels
from repro.protocols import uniform_k_partition
from repro.sessiond import SessionManager

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sessiond.json"
N = 300
SEED = 2026


def _provenance() -> dict:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=RESULT_PATH.parent,
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — provenance is best effort
        rev = "unknown"
    try:
        import numba

        numba_version = numba.__version__
    except Exception:  # noqa: BLE001 — absence is normal
        numba_version = None
    return {
        "git_rev": rev,
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "numba": numba_version,
        "kernel_backend": get_kernels().backend,
    }


def _record(point: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        try:
            data = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[point] = payload
    data["provenance"] = _provenance()
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _free_config(**overrides) -> dict:
    config = {
        "mode": "free",
        "engine": "count",
        "protocol": "uniform-k-partition",
        "params": {"k": 3},
        "n": N,
        "seed": SEED,
        "max_interactions": 2_000_000,
    }
    config.update(overrides)
    return config


def test_snapshot_restore_roundtrip(benchmark, tmp_path):
    """One checkpoint write + one rewind (restore) through the store."""
    manager = SessionManager(
        tmp_path / "bench.db", checkpoint_interval=1_000_000
    )
    try:
        manager.create(_free_config(), session_id="s")
        manager.advance("s", 5_000)
        at = manager.status("s")["interactions"]
        manager.snapshot("s")

        def roundtrip():
            manager.snapshot("s")
            manager.rewind("s", at)

        benchmark.pedantic(roundtrip, rounds=20, iterations=5)
        per_roundtrip = benchmark.stats.stats.min / 5
        _record(
            f"roundtrip_k3_n{N}",
            {
                "k": 3,
                "n": N,
                "engine": "count",
                "interactions_at_snapshot": at,
                "seconds_per_snapshot_restore": round(per_roundtrip, 6),
            },
        )
        # A checkpoint round-trip must stay cheap enough to take every
        # few thousand interactions without dominating the run.
        assert per_roundtrip < 0.5
    finally:
        manager.close()


@pytest.mark.parametrize("interval", [512, 2048, 8192])
def test_store_size_vs_checkpoint_interval(tmp_path, interval):
    """Store footprint of a full run at several checkpoint cadences."""
    store_path = tmp_path / f"interval-{interval}.db"
    manager = SessionManager(store_path, checkpoint_interval=interval)
    try:
        manager.create(
            _free_config(checkpoint_interval=interval), session_id="s"
        )
        start = time.perf_counter()
        manager.advance("s")
        elapsed = time.perf_counter() - start
        stats = manager.store.stats()
        interactions = manager.status("s")["interactions"]
        swept = manager.gc()
        after = manager.store.stats()
        _record(
            f"store_interval_{interval}",
            {
                "k": 3,
                "n": N,
                "engine": "count",
                "checkpoint_interval": interval,
                "interactions": interactions,
                "run_seconds": round(elapsed, 4),
                "snapshots": stats["snapshots"],
                "bytes": stats["bytes"],
                "bytes_after_gc": after["bytes"],
                "gc_snapshots_removed": swept["snapshots_removed"],
            },
        )
        assert stats["snapshots"] >= interactions // interval
        # GC keeps only the protected set (first + latest here).
        assert after["snapshots"] == 2
    finally:
        manager.close()
