"""Benchmarks: model checking, exact analysis, and the search engine.

These time the verification machinery itself (the reproduction's
evidence generators), with correctness asserted on each run.
"""

from __future__ import annotations

from repro.analysis import expected_interactions_exact, verify_kpartition
from repro.analysis.search import search_lower_bound
from repro.protocols import uniform_k_partition

PROTO3 = uniform_k_partition(3)


def test_model_check_theorem1(benchmark):
    report = benchmark(lambda: verify_kpartition(PROTO3, 9))
    assert report.correct
    assert report.reachable > 50


def test_exact_expectation_with_variance(benchmark):
    ex = benchmark(
        lambda: expected_interactions_exact(PROTO3, 8, with_variance=True)
    )
    assert ex.from_initial > 0
    assert ex.variance_from_initial > 0


def test_two_state_lower_bound_search(benchmark):
    result = benchmark(lambda: search_lower_bound(2, 2, ns=(3, 4, 5, 6)))
    assert result.lower_bound_holds
    assert result.candidates == 32
