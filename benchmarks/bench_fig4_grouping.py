"""Benchmark: Figure 4 — per-grouping decomposition NI'_i.

Regenerates the stacked decomposition at reduced scale and asserts the
paper's two qualitative claims (monotone increments from the second
grouping on; the final grouping dominates at the window boundary).
"""

from __future__ import annotations

from repro.experiments.fig4_grouping import last_grouping_shares, run_fig4


def _sweep():
    return run_fig4(
        ks=(4,),
        n_values=(12, 16, 20),
        trials=20,
        seed=8,
    )


def test_fig4_decomposition(benchmark):
    table = benchmark(_sweep)
    # Every (k, n) point carries floor(n/k) grouping rows + remainder.
    for n in (12, 16, 20):
        groupings = [r for r in table.where(k=4, n=n).rows if r["grouping"] > 0]
        assert len(groupings) == n // 4
        # Monotone from the 2nd grouping on.
        incs = [r["mean_increment"] for r in sorted(groupings, key=lambda r: r["grouping"])]
        assert all(a <= b for a, b in zip(incs[1:], incs[2:]))
    # n ≡ 0 (mod k): last grouping takes more than half of the total.
    shares = last_grouping_shares(table, 4)
    assert shares[16] > 0.45
    assert shares[20] > 0.45
