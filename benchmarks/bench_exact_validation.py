"""Benchmark: exact expected-interaction computation vs simulation.

Times the first-step-analysis solve plus a simulation batch and
asserts the two agree — the quantitative engine-validation claim.
"""

from __future__ import annotations

from repro.experiments.exact_validation import run_exact_validation


def _run():
    return run_exact_validation(points=((2, 6), (3, 6)), trials=500, seed=6)


def test_exact_validation(benchmark):
    table = benchmark(_run)
    for row in table.rows:
        assert row["gap_in_sigmas"] < 5.0
