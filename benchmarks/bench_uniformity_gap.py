"""Benchmark: uniformity-gap ablation (Algorithm 1 vs baselines).

Regenerates the partition-quality comparison and asserts the ordering
the paper argues from: Algorithm 1 is exactly uniform, the approximate
baseline only meets its n/(2k) floor.
"""

from __future__ import annotations

from repro.experiments.uniformity_gap import run_uniformity_gap


def _sweep():
    return run_uniformity_gap(k=4, n_values=(48, 96), trials=8, seed=11)


def test_uniformity_gap(benchmark):
    table = benchmark(_sweep)
    for row in table.where(protocol="uniform-k-partition").rows:
        assert row["max_spread"] <= 1
    for row in table.where(protocol="approx-k-partition").rows:
        assert row["worst_min_group"] >= row["guarantee_floor"]
